#!/usr/bin/env python
"""Dynamic load balancing with an RMA work-stealing counter.

The paper's §II motivates the strawman API with libraries like Global
Arrays, whose applications rely on exactly this idiom: a shared global
task counter advanced with an atomic fetch-and-increment, so ranks pull
work at their own pace with no central coordinator and no two-sided
messaging.

Tasks have deliberately unequal costs; static block partitioning would
leave most ranks idle while one grinds.  The RMW-based dynamic schedule
keeps everyone busy.

Run:  python examples/global_counter.py
"""

from repro import World
from repro.network import quadrics_like

N_TASKS = 64


def task_cost(task_id: int) -> float:
    """Simulated µs of compute; the heavy tasks cluster at the front so
    a static block partition dumps them all on the first ranks."""
    return 220.0 if task_id < 16 else 12.0


def dynamic_program(ctx):
    """Everyone loops: fetch_and_add the global counter, run that task."""
    alloc, tmems = yield from ctx.rma.expose_collective(8)
    counter = tmems[0]  # rank 0 hosts the shared counter
    yield from ctx.comm.barrier()
    t0 = ctx.sim.now
    done = []
    while True:
        task = yield from ctx.rma.fetch_and_add(counter, 0, "int64", 1)
        task = int(task)
        if task >= N_TASKS:
            break
        yield from ctx.compute(task_cost(task))
        done.append(task)
    busy = ctx.sim.now - t0
    yield from ctx.comm.barrier()
    return (len(done), busy, ctx.sim.now - t0)


def static_program(ctx):
    """Baseline: block partitioning, no communication at all."""
    per = (N_TASKS + ctx.size - 1) // ctx.size
    mine = range(ctx.rank * per, min((ctx.rank + 1) * per, N_TASKS))
    t0 = ctx.sim.now
    for task in mine:
        yield from ctx.compute(task_cost(task))
    yield from ctx.comm.barrier()
    return (len(mine), ctx.sim.now - t0, ctx.sim.now - t0)


def run(label, program):
    world = World(n_ranks=8, network=quadrics_like(), seed=3)
    out = world.run(program)
    total = world.now
    counts = [c for c, _, _ in out]
    print(f"{label:>8}: makespan {total:8.1f} µs | tasks/rank "
          f"min={min(counts)} max={max(counts)} | "
          f"sum={sum(counts)}")
    return total


def main():
    print(f"{N_TASKS} imbalanced tasks on 8 ranks "
          f"(total work {sum(task_cost(t) for t in range(N_TASKS)):.0f} µs)\n")
    t_static = run("static", static_program)
    t_dynamic = run("dynamic", dynamic_program)
    print(f"\nspeedup from RMA work stealing: {t_static / t_dynamic:.2f}x")
    assert t_dynamic < t_static


if __name__ == "__main__":
    main()
