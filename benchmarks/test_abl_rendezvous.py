"""Ablation A12 — two-sided protocols vs one-sided RMA for bulk data.

§I: RMA "allows communication hardware to move data from one process to
another with maximal efficiency" and avoids tag matching.  This bench
pits the two-sided eager and rendezvous protocols against a plain RMA
put for a bulk transfer whose receiver is busy (posts late) — the
scenario where two-sided synchronization semantics actually bite:

- eager: data arrives early but waits in the unexpected queue and pays
  an extra copy at match time;
- rendezvous: no copy, but the payload cannot even start moving until
  the receiver posts (RTS/CTS round trip after the delay);
- RMA put: the data is simply *there* when the consumer looks.
"""

import numpy as np
import pytest

from repro.bench.harness import Series, format_table
from repro.datatypes import BYTE
from repro.runtime import World

SIZE = 200_000
LATE = 300.0  # µs the consumer is busy before looking for the data


def transfer_time(mode: str) -> float:
    """Time from transfer start until the consumer holds the data."""

    def program(ctx):
        alloc, tmems = yield from ctx.rma.expose_collective(SIZE)
        yield from ctx.comm.barrier()
        start = ctx.sim.now
        if mode in ("eager", "rendezvous"):
            if ctx.rank == 0:
                yield from ctx.comm.send(np.ones(SIZE, np.uint8), dest=1)
            else:
                yield ctx.sim.timeout(LATE)  # busy computing
                got = yield from ctx.comm.recv(source=0)
                assert got.size == SIZE
                return ctx.sim.now - start
        else:  # rma
            if ctx.rank == 0:
                src = ctx.mem.space.alloc(SIZE, fill=1)
                yield from ctx.rma.put(src, 0, SIZE, BYTE, tmems[1], 0, SIZE,
                                       BYTE, blocking=True,
                                       remote_completion=True)
                yield from ctx.comm.send("ready", dest=1, tag=7)
            else:
                yield ctx.sim.timeout(LATE)
                yield from ctx.comm.recv(source=0, tag=7)
                data = ctx.mem.load(alloc, 0, SIZE)  # already here
                assert data[0] == 1
                return ctx.sim.now - start
        return None

    threshold = 10**9 if mode == "eager" else 64
    out = World(n_ranks=2, eager_threshold=threshold).run(program)
    return out[1]


MODES = ["eager", "rendezvous", "rma"]


@pytest.fixture(scope="module")
def results():
    return {m: transfer_time(m) for m in MODES}


def test_rma_wins_with_busy_receiver(results, bench_once):
    series = {m: Series(m, [results[m]]) for m in MODES}
    table = format_table(
        f"A12: 200 KB to a receiver that is busy for {LATE:.0f} µs",
        "scenario",
        ["late consumer"],
        series,
        unit="µs",
    )
    print("\n" + table)

    # the put overlapped the receiver's compute entirely: it finishes
    # right at the 'ready' handshake
    assert results["rma"] < results["rendezvous"]
    assert results["rma"] < results["eager"]
    # rendezvous serializes the payload after the late post: worst here
    assert results["rendezvous"] > results["eager"]

    bench_once(transfer_time, "rma")
