"""Ablation A2 — remote-completion cost vs NIC completion events.

§III-B: remote completion is "trivial to implement" when the network
reports it (Portals event queue); without such a mechanism software adds
a penalty.  We take each fabric and toggle *only* the
``remote_completion_events`` capability: the extra cost of per-op remote
completion (delta over the attribute-free baseline) must be larger when
the hardware events are absent (software application acks through the
target's injection path).
"""

import pytest

from repro.bench import fig2_attribute_cost, format_table
from repro.bench.harness import Series
from repro.network import infiniband_like, seastar_portals

SIZES = [8, 256, 1024]


def delta_rc(network, size):
    """Extra cost of per-op remote completion over the baseline."""
    none = fig2_attribute_cost("none", size, network=network)
    rc = fig2_attribute_cost("remote_complete", size, network=network)
    return rc - none


@pytest.fixture(scope="module")
def results():
    out = {}
    for base_name, base in (("seastar", seastar_portals()),
                            ("ib", infiniband_like())):
        for eq in (True, False):
            label = f"{base_name}/{'EQ' if eq else 'no-EQ'}"
            net = base.with_(remote_completion_events=eq)
            out[label] = Series(label,
                                [delta_rc(net, s) for s in SIZES])
    return out


def test_completion_events_cheaper_than_software(results, bench_once):
    table = format_table(
        "A2: extra cost of per-op remote completion (100 puts), by NIC "
        "completion capability",
        "bytes/put",
        SIZES,
        results,
        unit="ms",
        scale=1e-3,
    )
    print("\n" + table)

    for i, size in enumerate(SIZES):
        assert (results["seastar/no-EQ"].values[i]
                > results["seastar/EQ"].values[i]), size
        assert (results["ib/no-EQ"].values[i]
                > results["ib/EQ"].values[i]), size
        # ...but it stays a "slight penalty", not an order of magnitude
        assert (results["seastar/no-EQ"].values[i]
                < 2.0 * results["seastar/EQ"].values[i]), size

    bench_once(fig2_attribute_cost, "remote_complete", 256,
               network=infiniband_like())
