"""Figure 2 — the cost of each RMA attribute on a Cray-XT5-like system.

Paper workload: 7 origin processes each do 100 blocking RMA Puts to
overlapping memory on process 0, then one RMA_Complete.  Series: no
attributes, ordering, remote completion, atomicity with a coarse-grain
lock serializer, atomicity with a communication-thread serializer.
Sizes 8 B – 1 KB.

Shape criteria (DESIGN.md §5):

1. ordering ≈ none (ordering is a natural SeaStar property — the two
   lines overlap in the paper's plot);
2. remote completion strictly costlier than both;
3. atomicity + thread above remote completion but the same order of
   magnitude ("serialized … with low overhead");
4. atomicity + coarse lock far above everything (the paper's
   "significant performance penalty");
5. every series grows with message size.
"""

import pytest

from repro.bench import FIG2_ATTR_MODES, fig2_attribute_cost, format_table
from repro.bench.harness import Series

SIZES = [8, 32, 128, 512, 1024]


@pytest.fixture(scope="module")
def fig2_results():
    series = {}
    for mode in FIG2_ATTR_MODES:
        series[mode] = Series(
            label=mode,
            values=[fig2_attribute_cost(mode, size) for size in SIZES],
        )
    return series


def test_fig2_table_and_shape(fig2_results, bench_once):
    table = format_table(
        "Figure 2: time for 100 RMA Puts + 1 RMA Complete (XT5-like)",
        "bytes/put",
        SIZES,
        fig2_results,
        unit="ms",
        scale=1e-3,
    )
    print("\n" + table)

    none_v = fig2_results["none"].values
    order_v = fig2_results["ordering"].values
    rc_v = fig2_results["remote_complete"].values
    thr_v = fig2_results["atomicity+thread"].values
    lock_v = fig2_results["atomicity+lock"].values

    for i, size in enumerate(SIZES):
        # (1) ordering is free on an ordered fabric: lines overlap
        assert order_v[i] == pytest.approx(none_v[i], rel=0.02), size
        # (2) remote completion strictly above
        assert rc_v[i] > 1.2 * none_v[i], size
        # (3) thread-serialized atomicity above remote completion but
        #     within the same order of magnitude
        assert rc_v[i] < thr_v[i] < 8 * rc_v[i], size
        # (4) coarse lock far above everything else
        assert lock_v[i] > 3 * thr_v[i], size
        assert lock_v[i] > 8 * none_v[i], size
    # (5) growth with size for every series
    for mode in FIG2_ATTR_MODES:
        v = fig2_results[mode].values
        assert v[-1] > v[0], mode

    # wall-clock tracking on the baseline configuration
    bench_once(fig2_attribute_cost, "none", 1024)


def test_fig2_deterministic(fig2_results):
    """Same seed, same result — the whole experiment is reproducible."""
    again = fig2_attribute_cost("remote_complete", 128)
    assert again == fig2_results["remote_complete"].values[SIZES.index(128)]
