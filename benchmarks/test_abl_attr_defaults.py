"""Ablation A10 — attribute defaults and the strict debugging mode.

§IV requirement 5: attributes can be set per communicator or per call,
and it should be easy to switch to "the most stringent rules while
debugging".  This bench shows (a) the two mechanisms are equivalent in
cost, and (b) what the strict mode costs over the tuned fast path —
the price of debuggability.
"""

import pytest

from repro.bench.harness import Series, format_table
from repro.datatypes import BYTE
from repro.rma import RmaAttrs
from repro.runtime import World

N_PUTS = 50
SIZE = 128


def run_puts(attr_source: str) -> float:
    def program(ctx):
        alloc, tmems = yield from ctx.rma.expose_collective(4096)
        elapsed = None
        if ctx.rank == 1:
            src = ctx.mem.space.alloc(SIZE)
            if attr_source == "comm-default-strict":
                ctx.rma.set_default_attrs(RmaAttrs.strict(), ctx.comm)
                kwargs = {}
            elif attr_source == "per-call-strict":
                kwargs = {"attrs": RmaAttrs.strict()}
            elif attr_source == "none":
                kwargs = {"attrs": RmaAttrs(blocking=True)}
            else:
                raise ValueError(attr_source)
            t0 = ctx.sim.now
            for _ in range(N_PUTS):
                yield from ctx.rma.put(
                    src, 0, SIZE, BYTE, tmems[0], 0, SIZE, BYTE, **kwargs,
                )
            yield from ctx.rma.complete(ctx.comm, 0)
            elapsed = ctx.sim.now - t0
        yield from ctx.comm.barrier()
        return elapsed

    return World(n_ranks=2).run(program)[1]


SOURCES = ["none", "per-call-strict", "comm-default-strict"]


@pytest.fixture(scope="module")
def results():
    return {s: run_puts(s) for s in SOURCES}


def test_defaults_equivalent_and_strict_costs(results, bench_once):
    series = {s: Series(s, [results[s]]) for s in SOURCES}
    table = format_table(
        f"A10: {N_PUTS} puts + complete under different attribute sources",
        "workload",
        [f"{SIZE} B"],
        series,
        unit="µs",
    )
    print("\n" + table)

    # (a) the per-call override and the communicator default cost the same
    assert results["per-call-strict"] == pytest.approx(
        results["comm-default-strict"], rel=1e-6
    )
    # (b) strict debugging mode costs real money over the fast path —
    # that is exactly why attributes are per-operation
    assert results["per-call-strict"] > 2.0 * results["none"]

    bench_once(run_puts, "none")
