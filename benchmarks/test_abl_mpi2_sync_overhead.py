"""Ablation A5 — MPI-2 synchronization overhead on a halo exchange.

§I–II: the synchronization methods "add overhead to the basic data
transfer functions" and scale differently: fence is collective (pays a
barrier over all ranks), PSCW synchronizes only the neighbour group,
lock/unlock pays per-target round trips, and the strawman's
``complete_collective`` needs no window epochs at all.
"""

import pytest

from repro.bench import format_table, halo_exchange_time
from repro.bench.harness import Series

MODES = ["fence", "pscw", "lock", "strawman"]
RANKS = [4, 8, 16]


@pytest.fixture(scope="module")
def results():
    return {
        m: Series(m, [
            halo_exchange_time(m, n_ranks=n, halo_bytes=1024, iterations=5)
            for n in RANKS
        ])
        for m in MODES
    }


def test_halo_exchange_sync_overheads(results, bench_once):
    table = format_table(
        "A5: ring halo exchange (1 KiB halos), per-iteration time",
        "ranks",
        RANKS,
        results,
        unit="µs",
    )
    print("\n" + table)

    for i, n in enumerate(RANKS):
        fence = results["fence"].values[i]
        pscw = results["pscw"].values[i]
        lock = results["lock"].values[i]
        strawman = results["strawman"].values[i]
        # the strawman round beats fence and lock epochs
        assert strawman < fence, n
        assert strawman < lock, n
    # fence pays a collective: its cost must grow with rank count
    assert results["fence"].values[-1] > results["fence"].values[0]
    # pscw synchronizes only neighbours: flatter growth than fence
    growth_fence = results["fence"].values[-1] / results["fence"].values[0]
    growth_pscw = results["pscw"].values[-1] / results["pscw"].values[0]
    assert growth_pscw < growth_fence

    bench_once(halo_exchange_time, "fence", n_ranks=8, iterations=2)
