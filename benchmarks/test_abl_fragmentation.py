"""Ablation A11 — MTU/fragmentation (a DESIGN.md §6 design decision).

The engine fragments transfers at the fabric MTU.  Fragmentation is a
pure *modeling* choice with observable consequences: too small an MTU
and per-packet costs dominate large transfers; large transfers pipeline
across fragments so bandwidth is retained; and fragmentation is what
makes non-atomic overlapping access interleave at all (§IV req. 3 —
the atomicity tests depend on it).
"""

import pytest

from repro.bench.harness import Series, format_table
from repro.datatypes import BYTE
from repro.network import generic_rdma
from repro.runtime import World

PAYLOAD = 262_144  # 256 KiB


def big_put_time(mtu: int) -> float:
    def program(ctx):
        alloc, tmems = yield from ctx.rma.expose_collective(PAYLOAD)
        elapsed = None
        if ctx.rank == 1:
            src = ctx.mem.space.alloc(PAYLOAD)
            t0 = ctx.sim.now
            yield from ctx.rma.put(src, 0, PAYLOAD, BYTE, tmems[0], 0,
                                   PAYLOAD, BYTE, blocking=True,
                                   remote_completion=True)
            elapsed = ctx.sim.now - t0
        yield from ctx.comm.barrier()
        return elapsed

    net = generic_rdma().with_(mtu=mtu)
    return World(n_ranks=2, network=net).run(program)[1]


MTUS = [256, 1024, 4096, 16384, 65536]


@pytest.fixture(scope="module")
def results():
    return {"256 KiB put": Series("t", [big_put_time(m) for m in MTUS])}


def test_mtu_effect_on_large_transfer(results, bench_once):
    table = format_table(
        "A11: 256 KiB remotely-complete put vs MTU",
        "mtu (bytes)",
        MTUS,
        results,
        unit="µs",
    )
    print("\n" + table)

    v = results["256 KiB put"].values
    # tiny MTUs pay header+gap per fragment: strictly worse
    assert v[0] > v[1] > v[2]
    # beyond a few KiB the transfer is bandwidth-bound: diminishing
    # returns, within 25%
    assert v[-1] > 0.75 * v[2]
    # effective bandwidth sanity: never below 25% of line rate
    line_rate_time = PAYLOAD * generic_rdma().byte_time
    assert v[-1] < 4 * line_rate_time

    bench_once(big_put_time, 4096)
