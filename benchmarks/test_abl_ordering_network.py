"""Ablation A1 — the ordering attribute across network personalities.

§III-B: "RMA attributes such as ordering …, when they are offered as
features by the underlying network, are trivial to implement.  When a
network offers a mechanism to check for remote completion but doesn't
guarantee ordering of data transfers, the ordering attribute can still
be guaranteed with a slight penalty."

Two measurements on the Figure-2 workload:

- batch mode (fire-and-forget puts + one complete): ordering is free on
  *both* fabrics — target-side sequencing costs nothing when only the
  final watermark matters;
- per-op remote completion: on the ordered fabric the hardware event
  queue still serves (free); on the unordered fabric ordering
  invalidates delivery-time acks, forcing software application acks —
  the paper's "slight penalty".
"""

import pytest

from repro.bench import fig2_attribute_cost, format_table
from repro.bench.harness import Series
from repro.network import quadrics_like, seastar_portals

SIZES = [8, 256, 1024]
BATCH = ("none", "ordering")
PEROP = ("remote_complete", "ordering+remote_complete")


@pytest.fixture(scope="module")
def results():
    nets = {"seastar": seastar_portals, "quadrics": quadrics_like}
    out = {}
    for netname, net in nets.items():
        for mode in BATCH + PEROP:
            label = f"{netname}/{mode}"
            out[label] = Series(label, [
                fig2_attribute_cost(mode, s, network=net()) for s in SIZES
            ])
    return out


def test_ordering_cost_depends_on_network(results, bench_once):
    table = format_table(
        "A1: ordering attribute vs fabric ordering (100 puts + complete)",
        "bytes/put",
        SIZES,
        results,
        unit="ms",
        scale=1e-3,
    )
    print("\n" + table)

    for i, size in enumerate(SIZES):
        # batch completion: ordering free on both fabrics
        assert results["seastar/ordering"].values[i] == pytest.approx(
            results["seastar/none"].values[i], rel=0.02), size
        assert results["quadrics/ordering"].values[i] == pytest.approx(
            results["quadrics/none"].values[i], rel=0.10), size
        # per-op remote completion: free where the fabric orders...
        assert results["seastar/ordering+remote_complete"].values[i] == (
            pytest.approx(results["seastar/remote_complete"].values[i],
                          rel=0.02)), size
        # ...slight penalty where it does not (software acks + gating)
        ratio = (results["quadrics/ordering+remote_complete"].values[i]
                 / results["quadrics/remote_complete"].values[i])
        assert 1.02 < ratio < 2.5, (size, ratio)

    bench_once(fig2_attribute_cost, "ordering+remote_complete", 256,
               network=quadrics_like())
