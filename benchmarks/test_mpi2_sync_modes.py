"""Figure 1 (behavioural) — the three MPI-2 synchronization methods.

Figure 1 is an illustration, not a measurement; this bench demonstrates
each mode working on the simulated machine and reports the cost of one
synchronized update round under each, which quantifies the paper's §I
point that "the synchronization methods … add overhead to the basic data
transfer functions".
"""

import pytest

from repro.bench import format_table, latency_once
from repro.bench.harness import Series

MODES = ["mpi2_fence", "mpi2_lock", "strawman", "send_recv"]
SIZES = [8, 256, 1024]


@pytest.fixture(scope="module")
def results():
    return {
        m: Series(m, [latency_once(m, size=s) for s in SIZES]) for m in MODES
    }


def test_sync_mode_costs(results, bench_once):
    table = format_table(
        "One remotely-visible 'put' under each interface",
        "bytes",
        SIZES,
        results,
        unit="µs",
    )
    print("\n" + table)

    for i, size in enumerate(SIZES):
        strawman = results["strawman"].values[i]
        fence = results["mpi2_fence"].values[i]
        lock = results["mpi2_lock"].values[i]
        # MPI-2 synchronization adds overhead over the single-call
        # strawman put (the motivation of §IV requirement 4)
        assert fence > strawman, size
        assert lock > strawman, size

    bench_once(latency_once, "mpi2_fence", 256)
