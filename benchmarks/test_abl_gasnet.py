"""Ablation A7 — strawman vs GASNet (§VI).

Two gaps the paper calls out in GASNet's extended API (v1.8):

1. **no noncontiguous transfers** — moving a strided region costs one
   put per block, paying per-message overhead each time, where the
   strawman ships one datatype-described operation (both measured at
   identical local-completion semantics);
2. **no accumulate** — a remote update needs a get, local arithmetic,
   and a put back: slightly slower per update *and not atomic*, so
   contended updates lose increments; the strawman's accumulate is one
   one-sided op and (with the atomicity attribute) loses nothing.
"""

import pytest

from repro.bench.harness import Series, format_table
from repro.datatypes import BYTE, FLOAT64, hvector
from repro.runtime import World

BLOCK = 64
STRIDE = 256


def strided_via_gasnet(n_blocks: int) -> float:
    """Per-block puts + implicit-handle sync (local completion, µs)."""

    def program(ctx):
        yield from ctx.gasnet.attach(STRIDE * (n_blocks + 1))
        elapsed = None
        if ctx.rank == 1:
            src = ctx.mem.space.alloc(BLOCK * n_blocks)
            t0 = ctx.sim.now
            for b in range(n_blocks):
                yield from ctx.gasnet.put_nbi(
                    0, b * STRIDE, src, b * BLOCK, BLOCK
                )
            yield from ctx.gasnet.wait_syncnbi()
            elapsed = ctx.sim.now - t0
        yield from ctx.comm.barrier()
        return elapsed

    return World(n_ranks=2).run(program)[1]


def strided_via_strawman(n_blocks: int) -> float:
    """One datatype-described put (local completion, µs)."""

    def program(ctx):
        alloc, tmems = yield from ctx.rma.expose_collective(
            STRIDE * (n_blocks + 1)
        )
        elapsed = None
        if ctx.rank == 1:
            src = ctx.mem.space.alloc(BLOCK * n_blocks)
            t = hvector(n_blocks, BLOCK, STRIDE, BYTE)
            t0 = ctx.sim.now
            yield from ctx.rma.put(
                src, 0, n_blocks * BLOCK, BYTE, tmems[0], 0, 1, t,
                blocking=True,
            )
            elapsed = ctx.sim.now - t0
        yield from ctx.comm.barrier()
        return elapsed

    return World(n_ranks=2).run(program)[1]


def contended_updates(api: str, n_updaters: int = 3, per_rank: int = 10):
    """(final_counter, expected, µs_per_update) under contention."""

    def program(ctx):
        alloc, tmems = yield from ctx.rma.expose_collective(64)
        seg = None
        if ctx.gasnet is not None:
            seg = yield from ctx.gasnet.attach(64)
        yield from ctx.comm.barrier()
        elapsed = None
        if 1 <= ctx.rank <= n_updaters:
            t0 = ctx.sim.now
            if api == "gasnet":
                tmp = ctx.mem.space.alloc(8)
                for _ in range(per_rank):
                    yield from ctx.gasnet.get(0, 0, tmp, 0, 8)
                    v = ctx.mem.space.view(tmp, "float64")
                    v[0] += 1.0
                    yield from ctx.gasnet.put(0, 0, tmp, 0, 8)
            else:
                src = ctx.mem.space.alloc(8)
                ctx.mem.space.view(src, "float64")[0] = 1.0
                for _ in range(per_rank):
                    yield from ctx.rma.accumulate(
                        src, 0, 1, FLOAT64, tmems[0], 0, 1, FLOAT64,
                        op="sum", atomicity=True, blocking=True,
                    )
            elapsed = (ctx.sim.now - t0) / per_rank
        yield from ctx.comm.barrier()
        yield from ctx.rma.complete_collective(ctx.comm)
        if ctx.rank == 0:
            where = seg if api == "gasnet" else alloc
            return float(ctx.mem.space.view(where, "float64")[0])
        return elapsed

    out = World(n_ranks=n_updaters + 1).run(program)
    return out[0], float(n_updaters * per_rank), max(out[1:])


N_BLOCKS = [4, 16, 64]


@pytest.fixture(scope="module")
def strided_results():
    return {
        "gasnet(per-block puts)": Series(
            "g", [strided_via_gasnet(n) for n in N_BLOCKS]
        ),
        "strawman(datatype put)": Series(
            "s", [strided_via_strawman(n) for n in N_BLOCKS]
        ),
    }


def test_strided_transfer(strided_results, bench_once):
    table = format_table(
        "A7a: strided region (64 B blocks, 256 B stride), local completion",
        "blocks",
        N_BLOCKS,
        strided_results,
        unit="µs",
    )
    print("\n" + table)
    g = strided_results["gasnet(per-block puts)"].values
    s = strided_results["strawman(datatype put)"].values
    # per-message overhead makes the per-block loop lose, and the gap
    # widens with the block count
    assert g[-1] > 3 * s[-1]
    assert (g[-1] / s[-1]) > (g[0] / s[0])
    bench_once(strided_via_strawman, 64)


def test_contended_remote_update(bench_once):
    got_g, expected, t_g = contended_updates("gasnet")
    got_s, _, t_s = contended_updates("strawman")
    print(
        f"\nA7b: contended counter (3 updaters x 10): "
        f"gasnet get+add+put -> {got_g:.0f}/{expected:.0f} "
        f"({t_g:.2f} µs/update), "
        f"strawman atomic accumulate -> {got_s:.0f}/{expected:.0f} "
        f"({t_s:.2f} µs/update)"
    )
    # the strawman accumulate loses nothing
    assert got_s == expected
    # the unatomic read-modify-write loses updates under contention
    assert got_g < expected
    bench_once(contended_updates, "strawman")
