"""Shared bench configuration.

Every bench prints the paper-style table (simulated time) and asserts
the qualitative shape the paper reports; pytest-benchmark wraps one
representative configuration per bench so wall-clock regressions are
also tracked.  Run with::

    pytest benchmarks/ --benchmark-only -s
"""

import pytest


def pedantic(benchmark, fn, *args, **kwargs):
    """One-shot benchmark run (simulations are deterministic; repeated
    rounds only re-measure interpreter noise)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                              iterations=1)


@pytest.fixture
def bench_once(benchmark):
    """Fixture exposing the one-shot pedantic runner."""

    def runner(fn, *args, **kwargs):
        return pedantic(benchmark, fn, *args, **kwargs)

    return runner
