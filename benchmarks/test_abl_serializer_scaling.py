"""Ablation A9 — serializer scalability under contention (extends Fig. 2).

The paper measures atomicity at 7 contending origins; this sweeps the
origin count.  The coarse lock serializes *entire lock-hold spans*
(grant → transfer → ack → release), so its per-origin time grows roughly
linearly with contenders; the communication thread serializes only the
application step and degrades far more gently.
"""

import pytest

from repro.bench import fig2_attribute_cost, format_table
from repro.bench.harness import Series

ORIGINS = [2, 4, 8, 12]
PUTS = 50
SIZE = 64


@pytest.fixture(scope="module")
def results():
    out = {}
    for mode in ("atomicity+thread", "atomicity+lock"):
        out[mode] = Series(mode, [
            fig2_attribute_cost(mode, SIZE, n_origins=n,
                                puts_per_origin=PUTS)
            for n in ORIGINS
        ])
    return out


def test_lock_scales_worse_than_thread(results, bench_once):
    table = format_table(
        f"A9: {PUTS} atomic puts/origin + complete, vs contention",
        "origins",
        ORIGINS,
        results,
        unit="ms",
        scale=1e-3,
    )
    print("\n" + table)

    thr = results["atomicity+thread"].values
    lock = results["atomicity+lock"].values
    for i, n in enumerate(ORIGINS):
        assert lock[i] > thr[i], n
    growth_lock = lock[-1] / lock[0]
    growth_thread = thr[-1] / thr[0]
    # the lock's contention growth clearly outpaces the thread's
    assert growth_lock > 1.5 * growth_thread, (growth_lock, growth_thread)
    # near-linear growth in contenders for the lock (6x origins -> ~>3x)
    assert growth_lock > 3.0

    bench_once(fig2_attribute_cost, "atomicity+thread", SIZE,
               n_origins=4, puts_per_origin=PUTS)
