"""Ablation A4 — small-message latency: strawman vs MPI-2 vs two-sided.

§IV requirement 4: "To permit low-latency operations, RMA operations
should be possible in a single routine call."  A remotely complete
strawman put is one call; MPI-2 needs lock/put/unlock (or a fence pair),
and two-sided messaging pays tag matching and the receiver's
participation.  The strawman must win on every fabric.
"""

import pytest

from repro.bench import format_table, latency_once
from repro.bench.harness import Series
from repro.network import generic_rdma, infiniband_like, seastar_portals

APIS = ["strawman", "mpi2_lock", "mpi2_fence", "send_recv"]
NETS = {
    "seastar": seastar_portals,
    "infiniband": infiniband_like,
    "generic": generic_rdma,
}


@pytest.fixture(scope="module")
def results():
    return {
        net: {
            api: latency_once(api, size=8, network=factory())
            for api in APIS
        }
        for net, factory in NETS.items()
    }


def test_strawman_has_lowest_latency(results, bench_once):
    series = {
        api: Series(api, [results[n][api] for n in sorted(NETS)])
        for api in APIS
    }
    table = format_table(
        "A4: 8-byte remotely-visible update latency",
        "fabric",
        sorted(NETS),
        series,
        unit="µs",
    )
    print("\n" + table)

    for net in NETS:
        strawman = results[net]["strawman"]
        for api in ("mpi2_lock", "mpi2_fence", "send_recv"):
            assert strawman < results[net][api], (net, api)
        # MPI-2 lock/unlock adds roughly a lock round trip
        assert results[net]["mpi2_lock"] > 1.3 * strawman, net

    bench_once(latency_once, "strawman", size=8)
