"""Ablation A8 — datatype engine cost: contiguous vs strided vs indexed.

§IV requirement 7 asks for noncontiguous transfers; this quantifies what
the engine charges for them (origin-side pack cost plus denser fragment
bookkeeping) and verifies the overhead stays small — the point of doing
datatypes in the interface instead of per-block user loops (see A7).
"""

import pytest

from repro.bench.harness import Series, format_table
from repro.datatypes import BYTE, INT64, contiguous, indexed, vector
from repro.runtime import World

PAYLOAD = 65536  # 64 KiB moved in every layout


def put_with_layout(layout: str) -> float:
    n_elems = PAYLOAD // 8  # int64 elements

    def program(ctx):
        alloc, tmems = yield from ctx.rma.expose_collective(4 * PAYLOAD)
        elapsed = None
        if ctx.rank == 1:
            src = ctx.mem.space.alloc(2 * PAYLOAD)
            if layout == "contiguous":
                dtype = contiguous(n_elems, INT64)
            elif layout == "vector":
                dtype = vector(n_elems // 8, 8, 16, INT64)  # half-dense
            elif layout == "indexed":
                dtype = indexed(
                    [8] * (n_elems // 8),
                    [i * 16 for i in range(n_elems // 8)],
                    INT64,
                )
            else:
                raise ValueError(layout)
            t0 = ctx.sim.now
            yield from ctx.rma.put(
                src, 0, 1, dtype, tmems[0], 0, 1, dtype, blocking=True,
            )
            yield from ctx.rma.complete(ctx.comm, 0)
            elapsed = ctx.sim.now - t0
        yield from ctx.comm.barrier()
        return elapsed

    return World(n_ranks=2).run(program)[1]


LAYOUTS = ["contiguous", "vector", "indexed"]


@pytest.fixture(scope="module")
def results():
    return {l: put_with_layout(l) for l in LAYOUTS}


def test_datatype_overhead_bounded(results, bench_once):
    series = {l: Series(l, [results[l]]) for l in LAYOUTS}
    table = format_table(
        "A8: 64 KiB remotely-complete put by layout",
        "payload",
        ["64 KiB"],
        series,
        unit="µs",
    )
    print("\n" + table)

    contig = results["contiguous"]
    # noncontiguous layouts pay a pack cost...
    assert results["vector"] > contig
    assert results["indexed"] > contig
    # ...but the engine keeps it within a small factor of contiguous
    assert results["vector"] < 2.0 * contig
    assert results["indexed"] < 2.0 * contig
    # vector and indexed describe the same byte pattern here: near-equal
    assert results["indexed"] == pytest.approx(results["vector"], rel=0.05)

    bench_once(put_with_layout, "vector")
