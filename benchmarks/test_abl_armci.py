"""Ablation A6 — completion granularity: strawman vs ARMCI (§VI).

"The primary addition that the strawman MPI-3 RMA API offers over the
model supported by ARMCI is flexibility in the attributes of the RMA
operation and more powerful completion semantics. … It is also possible
to check local or remote completion of a subset of RMA operations.
Neither is possible with the current ARMCI API."

Workload: one origin sends fast non-atomic puts to target A and slow
*serialized* accumulates to target B (whose serializer is the
progress-poll fallback, so application lags).  Each run then performs
exactly one completion flavour and times it: completing "just the A
traffic" (per-request or per-target — strawman) is cheap; the global
AllFence (ARMCI's coarse tool) must wait for B's lagging serializer.
"""

import pytest

from repro.bench.harness import Series, format_table
from repro.datatypes import BYTE, FLOAT64
from repro.rma import ALL_RANKS
from repro.runtime import World


def completion_time(flavor: str, n_small: int = 10) -> float:
    """Time of the single completion call named by ``flavor`` (µs)."""

    def program(ctx):
        alloc, tmems = yield from ctx.rma.expose_collective(4096)
        result = None
        if ctx.rank == 1:
            src = ctx.mem.space.alloc(64, fill=1)
            facc = ctx.mem.space.alloc(4096)

            # fast traffic to A (rank 0): plain puts with per-request
            # remote completion available
            reqs = []
            for i in range(n_small):
                r = yield from ctx.rma.put(
                    src, 0, 64, BYTE, tmems[0], i * 64, 64, BYTE,
                    remote_completion=True,
                )
                reqs.append(r)
            # slow traffic to B (rank 2): bulky atomic accumulates whose
            # application waits for B's progress poll and then drains
            # one serialized job at a time
            for _ in range(n_small):
                yield from ctx.rma.accumulate(
                    facc, 0, 512, FLOAT64, tmems[2], 0, 512, FLOAT64,
                    op="sum", atomicity=True,
                )

            from repro.mpi.request import Request

            t0 = ctx.sim.now
            if flavor == "per-request":
                yield from Request.waitall(reqs)
            elif flavor == "per-target":
                yield from ctx.rma.complete(ctx.comm, 0)
            elif flavor == "all-fence":
                yield from ctx.rma.complete(ctx.comm, ALL_RANKS)
            else:
                raise ValueError(flavor)
            result = ctx.sim.now - t0
        yield from ctx.comm.barrier()
        return result

    return World(n_ranks=3, serializer="progress").run(program)[1]


FLAVORS = ["per-request", "per-target", "all-fence"]


@pytest.fixture(scope="module")
def results():
    return {f: completion_time(f) for f in FLAVORS}


def test_subset_completion_beats_allfence(results, bench_once):
    series = {f: Series(f, [results[f]]) for f in FLAVORS}
    table = format_table(
        "A6: time of one completion call after mixed fast/slow traffic",
        "workload",
        ["mixed A/B"],
        series,
        unit="µs",
    )
    print("\n" + table)
    print(
        "feature matrix (per §VI): blocking-unordered op: strawman yes / "
        "ARMCI no; per-subset completion: strawman yes / ARMCI no; "
        "configurable atomicity: strawman yes / ARMCI acc-only"
    )

    # the A-subset flavours must not pay for B's lagging serializer
    assert results["all-fence"] > 2 * results["per-target"]
    assert results["all-fence"] > 2 * results["per-request"]
    bench_once(completion_time, "per-target")


def test_armci_blocking_put_roundtrip_cost(bench_once):
    """ARMCI blocking puts carry ordering whether wanted or not; the
    strawman can issue the same put without (identical on ordered
    fabrics, cheaper on unordered ones — covered by A1)."""

    def program(ctx):
        alloc, ptrs = yield from ctx.armci.malloc(1024)
        elapsed = None
        if ctx.rank == 1:
            src = ctx.mem.space.alloc(256)
            t0 = ctx.sim.now
            for _ in range(20):
                yield from ctx.armci.put(src, 0, ptrs[0], 0, 256)
            yield from ctx.armci.fence(ptrs[0])
            elapsed = ctx.sim.now - t0
        yield from ctx.comm.barrier()
        return elapsed

    t = World(n_ranks=2).run(program)[1]
    print(f"\nARMCI 20 blocking puts + fence: {t:.1f} µs")
    assert t > 0
    bench_once(lambda: World(n_ranks=2).run(program)[1])
