"""Ablation A3 — RMA to a non-cache-coherent target (NEC SX style).

§III-B2: "for RMA, this implies that involvement of the target is
needed to either invalidate caches or otherwise make the process aware
of data written by other processes."  In the engine that surfaces as an
invalidation task on the target CPU before an op counts as applied, so
per-op remote completion costs more against a non-coherent target,
while fire-and-forget batches barely notice (invalidations overlap).
"""

import pytest

from repro.bench import fig2_attribute_cost, format_table
from repro.bench.harness import Series
from repro.machine import MachineConfig, NodeConfig

SIZES = [8, 256, 1024]


def sx_like_target(n_ranks: int = 8) -> MachineConfig:
    """Rank 0's node non-coherent (the Figure-2 target), rest coherent."""
    return MachineConfig(
        name="sx-like-target",
        n_nodes=n_ranks,
        threads_allowed=True,
        nodes=[NodeConfig(coherent=False)] + [NodeConfig(coherent=True)],
    )


@pytest.fixture(scope="module")
def results():
    out = {}
    for target, machine in (("coherent", None),
                            ("non-coherent", sx_like_target())):
        for mode in ("none", "remote_complete"):
            label = f"{target}/{mode}"
            out[label] = Series(label, [
                fig2_attribute_cost(mode, s, machine=machine) for s in SIZES
            ])
    return out


def test_noncoherent_target_costs_more(results, bench_once):
    table = format_table(
        "A3: 100 puts + complete vs target coherence",
        "bytes/put",
        SIZES,
        results,
        unit="ms",
        scale=1e-3,
    )
    print("\n" + table)

    for i, size in enumerate(SIZES):
        rc_coh = results["coherent/remote_complete"].values[i]
        rc_non = results["non-coherent/remote_complete"].values[i]
        # per-op completion pays the target-involvement (invalidation)
        assert rc_non > 1.1 * rc_coh, size
        # batch mode barely notices: invalidations overlap
        none_coh = results["coherent/none"].values[i]
        none_non = results["non-coherent/none"].values[i]
        assert none_non < 1.1 * none_coh, size

    bench_once(fig2_attribute_cost, "remote_complete", 256,
               machine=sx_like_target())
