"""Tests for the Global-Arrays-style library built on the strawman API."""

import numpy as np
import pytest

from repro.ga import GaError, GlobalArray
from repro.runtime import World


def run(program, n=4, **kw):
    return World(n_ranks=n, **kw).run(program)


class TestCreate:
    def test_block_distribution_with_remainder(self):
        def program(ctx):
            ga = yield from GlobalArray.create(ctx, (10,), "float64")
            return ga.local_slice()

        out = run(program, n=4)
        # 10 rows over 4 ranks: 3,3,2,2
        assert out == [(0, 3), (3, 6), (6, 8), (8, 10)]

    def test_owner_of(self):
        def program(ctx):
            ga = yield from GlobalArray.create(ctx, (10,))
            return [ga.owner_of(r) for r in range(10)]

        out = run(program, n=4)
        assert out[0] == [0, 0, 0, 1, 1, 1, 2, 2, 3, 3]

    def test_invalid_shapes(self):
        def program(ctx):
            yield from GlobalArray.create(ctx, (2, 2, 2))

        with pytest.raises(GaError, match="1-D and 2-D"):
            run(program, n=2)

    def test_unsupported_dtype(self):
        def program(ctx):
            yield from GlobalArray.create(ctx, (4,), dtype="complex128")

        with pytest.raises(GaError, match="unsupported dtype"):
            run(program, n=2)

    def test_local_view_shape(self):
        def program(ctx):
            ga = yield from GlobalArray.create(ctx, (8, 5))
            return ga.local_view().shape

        assert run(program, n=4) == [(2, 5)] * 4


class TestPutGet1D:
    def test_roundtrip_within_one_owner(self):
        def program(ctx):
            ga = yield from GlobalArray.create(ctx, (16,))
            if ctx.rank == 0:
                yield from ga.put(slice(4, 8), np.array([1.0, 2.0, 3.0, 4.0]))
            yield from ga.sync()
            got = yield from ga.get(slice(4, 8))
            return got.tolist()

        out = run(program, n=4)
        assert all(v == [1.0, 2.0, 3.0, 4.0] for v in out)

    def test_region_spanning_owners(self):
        def program(ctx):
            ga = yield from GlobalArray.create(ctx, (16,))
            if ctx.rank == 3:
                yield from ga.put(slice(0, 16), np.arange(16.0))
            yield from ga.sync()
            if ctx.rank == 1:
                got = yield from ga.get(slice(2, 14))
                return got.tolist()
            return None

        out = run(program, n=4)
        assert out[1] == list(np.arange(2.0, 14.0))

    def test_put_lands_in_owner_local_view(self):
        def program(ctx):
            ga = yield from GlobalArray.create(ctx, (8,))
            if ctx.rank == 0:
                yield from ga.put(slice(6, 8), np.array([9.0, 8.0]))
            yield from ga.sync()
            return ga.local_view().tolist()

        out = run(program, n=4)
        assert out[3] == [9.0, 8.0]

    def test_single_index_region(self):
        def program(ctx):
            ga = yield from GlobalArray.create(ctx, (8,))
            if ctx.rank == 0:
                yield from ga.put((5,), np.array([42.0]))
            yield from ga.sync()
            got = yield from ga.get((5,))
            return float(got[0])

        assert run(program, n=4)[2] == 42.0

    def test_out_of_bounds_region(self):
        def program(ctx):
            ga = yield from GlobalArray.create(ctx, (8,))
            yield from ga.get(slice(4, 12))

        with pytest.raises(GaError, match="outside dimension"):
            run(program, n=2)


class TestPutGet2D:
    def test_full_row_block(self):
        def program(ctx):
            ga = yield from GlobalArray.create(ctx, (8, 4))
            if ctx.rank == 0:
                block = np.arange(8.0).reshape(2, 4)
                yield from ga.put((slice(3, 5), slice(0, 4)), block)
            yield from ga.sync()
            got = yield from ga.get((slice(3, 5), slice(0, 4)))
            return got.tolist()

        out = run(program, n=4)
        assert out[1] == [[0, 1, 2, 3], [4, 5, 6, 7]]

    def test_column_subblock_uses_strided_layout(self):
        """A sub-block narrower than the row touches only its columns."""

        def program(ctx):
            ga = yield from GlobalArray.create(ctx, (4, 6))
            yield from ga.fill(0.0)
            if ctx.rank == 0:
                yield from ga.put((slice(0, 4), slice(2, 4)),
                                  np.full((4, 2), 5.0))
            yield from ga.sync()
            got = yield from ga.get((slice(0, 4), slice(0, 6)))
            return got

        out = run(program, n=4)
        grid = out[2]
        assert (grid[:, 2:4] == 5.0).all()
        assert (grid[:, :2] == 0.0).all()
        assert (grid[:, 4:] == 0.0).all()

    def test_2d_region_spanning_owners(self):
        def program(ctx):
            ga = yield from GlobalArray.create(ctx, (8, 3))
            if ctx.rank == 1:
                data = np.arange(24.0).reshape(8, 3)
                yield from ga.put((slice(0, 8), slice(0, 3)), data)
            yield from ga.sync()
            got = yield from ga.get((slice(1, 7), slice(1, 3)))
            return got

        out = run(program, n=4)
        ref = np.arange(24.0).reshape(8, 3)[1:7, 1:3]
        assert (out[0] == ref).all()


class TestAccumulate:
    def test_concurrent_accumulates_sum(self):
        def program(ctx):
            ga = yield from GlobalArray.create(ctx, (4,))
            yield from ga.fill(0.0)
            yield from ga.acc(slice(0, 4), np.ones(4), scale=float(ctx.rank + 1))
            yield from ga.sync()
            got = yield from ga.get(slice(0, 4))
            return got.tolist()

        out = run(program, n=4)
        total = float(sum(r + 1 for r in range(4)))
        assert out[0] == [total] * 4

    def test_acc_spanning_owners(self):
        def program(ctx):
            ga = yield from GlobalArray.create(ctx, (8,))
            yield from ga.fill(1.0)
            if ctx.rank == 0:
                yield from ga.acc(slice(0, 8), np.arange(8.0))
            yield from ga.sync()
            got = yield from ga.get(slice(0, 8))
            return got.tolist()

        out = run(program, n=4)
        assert out[1] == [1 + i for i in range(8)]


class TestReadInc:
    def test_work_sharing_counter(self):
        def program(ctx):
            ga = yield from GlobalArray.create(ctx, (2,), dtype="int64")
            yield from ga.fill(0)
            fetched = []
            for _ in range(5):
                fetched.append((yield from ga.read_inc(0)))
            yield from ga.sync()
            got = yield from ga.get((0,))
            return (int(got[0]), fetched)

        out = run(program, n=4)
        assert out[0][0] == 20
        all_fetched = sorted(v for _, f in out for v in f)
        assert all_fetched == list(range(20))

    def test_read_inc_requires_integers(self):
        def program(ctx):
            ga = yield from GlobalArray.create(ctx, (2,), dtype="float64")
            yield from ga.read_inc(0)

        with pytest.raises(GaError, match="integer"):
            run(program, n=2)


class TestLifecycle:
    def test_destroy_then_use_rejected(self):
        def program(ctx):
            ga = yield from GlobalArray.create(ctx, (4,))
            yield from ga.destroy()
            yield from ga.get(slice(0, 2))

        with pytest.raises(GaError, match="destroyed"):
            run(program, n=2)

    def test_two_arrays_coexist(self):
        def program(ctx):
            a = yield from GlobalArray.create(ctx, (4,))
            b = yield from GlobalArray.create(ctx, (4,))
            if ctx.rank == 0:
                yield from a.put(slice(0, 4), np.full(4, 1.0))
                yield from b.put(slice(0, 4), np.full(4, 2.0))
            yield from a.sync()
            yield from b.sync()
            ga = yield from a.get(slice(0, 4))
            gb = yield from b.get(slice(0, 4))
            yield from a.destroy()
            yield from b.destroy()
            return (ga.tolist(), gb.tolist())

        out = run(program, n=2)
        assert out[0] == ([1.0] * 4, [2.0] * 4)


class TestGetAcc:
    def test_fetches_old_while_updating(self):
        def program(ctx):
            ga = yield from GlobalArray.create(ctx, (4,))
            if ctx.rank == 0:
                yield from ga.put(slice(0, 4), np.array([1.0, 2.0, 3.0, 4.0]))
            yield from ga.sync()
            result = None
            if ctx.rank == 1:
                old = yield from ga.get_acc(slice(0, 4), np.ones(4),
                                            scale=10.0)
                result = old.tolist()
            yield from ga.sync()
            got = yield from ga.get(slice(0, 4))
            return (result, got.tolist())

        out = run(program, n=2)
        assert out[1][0] == [1.0, 2.0, 3.0, 4.0]
        assert out[0][1] == [11.0, 12.0, 13.0, 14.0]

    def test_get_acc_spanning_owners(self):
        def program(ctx):
            ga = yield from GlobalArray.create(ctx, (8,))
            yield from ga.fill(5.0)
            result = None
            if ctx.rank == 0:
                old = yield from ga.get_acc(slice(0, 8), np.ones(8))
                result = old.tolist()
            yield from ga.sync()
            got = yield from ga.get(slice(0, 8))
            return (result, got.tolist())

        out = run(program, n=4)
        assert out[0][0] == [5.0] * 8
        assert out[1][1] == [6.0] * 8


def test_xfer_get_accumulate_optype():
    from repro.datatypes import INT32

    def program(ctx):
        alloc, tmems = yield from ctx.rma.expose_collective(16)
        result = None
        if ctx.rank == 0:
            ctx.mem.space.view(alloc, "int32")[0] = 7
        yield from ctx.comm.barrier()
        if ctx.rank == 1:
            buf = ctx.mem.space.alloc(4)
            ctx.mem.space.view(buf, "int32")[0] = 3
            yield from ctx.rma.xfer(
                "get_accumulate", buf, 0, 1, INT32, tmems[0], 0, 1, INT32,
                accumulate_optype="sum",
            )
            result = int(ctx.mem.space.view(buf, "int32")[0])
        yield from ctx.comm.barrier()
        if ctx.rank == 0:
            return int(ctx.mem.space.view(alloc, "int32")[0])
        return result

    out = World(n_ranks=2).run(program)
    assert out[1] == 7   # fetched old
    assert out[0] == 10  # updated


class TestHybridMachine:
    def test_accumulate_across_endianness(self):
        """Regression: staged GA data must use the origin node's byte
        order, or big-endian hosts ship mislabeled bytes (caught by the
        integration soak test)."""
        from repro.machine import hybrid_accelerator

        def program(ctx):
            ga = yield from GlobalArray.create(ctx, (2,))
            yield from ga.fill(0.0)
            yield from ctx.comm.barrier()
            yield from ga.acc(slice(0, 2), np.ones(2))
            yield from ga.sync()
            got = yield from ga.get(slice(0, 2))
            return got.tolist()

        machine = hybrid_accelerator(n_host_nodes=1, n_accel_nodes=1)
        out = World(machine=machine).run(program)
        assert out == [[2.0, 2.0], [2.0, 2.0]]

    def test_put_get_across_endianness(self):
        from repro.machine import hybrid_accelerator

        def program(ctx):
            ga = yield from GlobalArray.create(ctx, (4,))
            if ctx.rank == 1:  # little-endian accel writes
                yield from ga.put(slice(0, 4), np.array([1.5, -2.0, 3.0, 0.25]))
            yield from ga.sync()
            got = yield from ga.get(slice(0, 4))
            return got.tolist()

        machine = hybrid_accelerator(n_host_nodes=1, n_accel_nodes=1)
        out = World(machine=machine).run(program)
        assert out[0] == [1.5, -2.0, 3.0, 0.25]
        assert out[1] == [1.5, -2.0, 3.0, 0.25]
