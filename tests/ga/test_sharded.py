"""The team-sharded key-value store."""

import numpy as np
import pytest

from repro.ga import GaError, PLACEMENTS, ShardedStore
from repro.ga.sharded import _block, _cyclic, _hashed
from repro.machine import MachineConfig, generic_cluster
from repro.pgas import Team
from repro.runtime import World


def two_by_two():
    return MachineConfig(n_nodes=2, ranks_per_node=2)


class TestPlacement:
    def test_block_covers_keyspace_contiguously(self):
        owners = [_block(k, 10, 4) for k in range(10)]
        assert owners == [0, 0, 0, 1, 1, 1, 2, 2, 3, 3]

    def test_cyclic_round_robins(self):
        assert [_cyclic(k, 8, 3) for k in range(6)] == [0, 1, 2, 0, 1, 2]

    def test_hashed_is_deterministic_and_spreads(self):
        owners = [_hashed(k, 64, 4) for k in range(64)]
        assert owners == [_hashed(k, 64, 4) for k in range(64)]
        assert len(set(owners)) == 4

    def test_every_builtin_covers_all_keys(self):
        for name in PLACEMENTS:
            w = World(machine=generic_cluster(n_nodes=4))

            def program(ctx, name=name):
                team = Team.world(ctx)
                store = yield from ShardedStore.create(
                    team, 32, placement=name)
                owners = [store.owner_of(k) for k in range(32)]
                yield from store.destroy()
                return owners

            out = w.run(program)
            assert out[0] == out[3]
            assert all(0 <= u < 4 for u in out[0])

    def test_custom_callable_placement(self):
        w = World(machine=generic_cluster(n_nodes=2))

        def everything_on_unit_1(key, n_units):
            return 1

        def program(ctx):
            team = Team.world(ctx)
            store = yield from ShardedStore.create(
                team, 8, placement=everything_on_unit_1)
            owners = {store.owner_of(k) for k in range(8)}
            name = store.placement
            yield from store.destroy()
            return owners, name

        out = w.run(program)
        assert out[0] == ({1}, "everything_on_unit_1")

    def test_bad_placement_rejected(self):
        w = World(machine=generic_cluster(n_nodes=2))

        def program(ctx):
            team = Team.world(ctx)
            errs = []
            try:
                yield from ShardedStore.create(team, 8, placement="nope")
            except GaError:
                errs.append("name")
            try:
                yield from ShardedStore.create(
                    team, 8, placement=lambda k, n: n + 1)
            except GaError:
                errs.append("range")
            return errs

        assert w.run(program) == [["name", "range"], ["name", "range"]]


class TestStoreOps:
    def test_put_get_add_fetch_add(self):
        w = World(machine=generic_cluster(n_nodes=4))

        def program(ctx):
            team = Team.world(ctx)
            store = yield from ShardedStore.create(team, 16,
                                                   placement="block")
            results = {}
            if team.myid == 0:
                yield from store.put(9, 100)
                results["get"] = yield from store.get(9)
                yield from store.add(9, 5)
                results["old"] = yield from store.fetch_add(9, 2)
            yield from store.sync()
            owner = store.owner_of(9)
            if team.myid == owner:
                results["shard"] = store.local_values().tolist()
            yield from store.destroy()
            return results

        out = w.run(program)
        assert out[0]["get"] == 100
        assert out[0]["old"] == 105
        owner = 2  # block placement: keys 8..11 on unit 2
        assert 107 in out[owner]["shard"]

    def test_concurrent_adds_never_lose_increments(self):
        w = World(machine=generic_cluster(n_nodes=4))

        def program(ctx):
            team = Team.world(ctx)
            store = yield from ShardedStore.create(team, 4,
                                                   placement="cyclic")
            for _ in range(5):
                yield from store.add(2, 1)
            yield from store.sync()
            val = None
            if team.myid == store.owner_of(2):
                val = int(store.local_values()[store._slots[2]])
            yield from store.destroy()
            return val

        out = w.run(program)
        assert out[2] == 20  # 4 units x 5 adds

    def test_key_bounds_checked(self):
        w = World(machine=generic_cluster(n_nodes=2))

        def program(ctx):
            team = Team.world(ctx)
            store = yield from ShardedStore.create(team, 8)
            try:
                yield from store.get(8)
            except GaError:
                return True
            finally:
                yield from store.destroy()
            return False

        assert w.run(program) == [True, True]

    def test_float_store_rejects_fetch_add(self):
        w = World(machine=generic_cluster(n_nodes=2))

        def program(ctx):
            team = Team.world(ctx)
            store = yield from ShardedStore.create(team, 4, dtype="float64")
            yield from store.put(1, 2.5)
            got = yield from store.get(1)
            try:
                yield from store.fetch_add(1, 1)
            except GaError:
                got = (got, "rejected")
            yield from store.destroy()
            return got

        out = w.run(program)
        assert out[0] == (2.5, "rejected")
        assert out[1] == (2.5, "rejected")


class TestStoreLocality:
    def test_colocated_requests_move_no_packets(self):
        """Requests for keys owned by the node partner go by load/store:
        zero NIC packets from issue to completion."""
        w = World(machine=two_by_two())

        def program(ctx):
            team = Team.world(ctx)
            store = yield from ShardedStore.create(team, 16,
                                                   placement="block")
            yield from ctx.comm.barrier()
            partner = ctx.rank ^ 1
            local_keys = [k for k in range(16)
                          if store.owner_of(k) == partner]
            delta = None
            if ctx.rank == 0:
                before = ctx.rma.engine.nic.packets_sent
                for k in local_keys:
                    assert store.is_local(k)
                    yield from store.put(k, k * 2)
                    got = yield from store.get(k)
                    assert got == k * 2
                delta = ctx.rma.engine.nic.packets_sent - before
            yield from store.destroy()
            return delta, len(local_keys)

        out = w.run(program)
        assert out[0] == (0, 4)
        assert w.contexts[0].rma.engine.stats["shm_ops"] == 8

    def test_cross_node_requests_use_nic(self):
        w = World(machine=two_by_two())

        def program(ctx):
            team = Team.world(ctx)
            store = yield from ShardedStore.create(team, 16,
                                                   placement="block")
            yield from ctx.comm.barrier()
            if ctx.rank == 0:
                remote_key = next(k for k in range(16)
                                  if not store.is_local(k))
                before = ctx.rma.engine.nic.packets_sent
                yield from store.put(remote_key, 1)
                assert ctx.rma.engine.nic.packets_sent > before
            yield from store.destroy()

        w.run(program)
        assert w.contexts[0].rma.engine.stats["shm_ops"] == 0
