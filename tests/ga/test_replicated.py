"""ReplicatedGlobalArray: replication, failover, and chaos.

The S3 contract under test: an owner killed mid-stream surfaces as a
structured error (or transparent failover) and **never** a hang;
``sync`` against a partially-failed communicator returns
deterministically; ``recover`` restores the replication factor; rf=1
falls back to checkpoint/rollback with documented data loss.
"""

import numpy as np
import pytest

from repro.faults import FaultPlan
from repro.ga import GaError
from repro.ga.replicated import ReplicatedGlobalArray
from repro.rma.target_mem import RmaError
from repro.runtime import World


class TestCreateAndLayout:
    def test_rf_bounds(self):
        def make(rf):
            def program(ctx):
                yield from ReplicatedGlobalArray.create(ctx, (8,), rf=rf)
            return program

        with pytest.raises(GaError, match="replication factor"):
            World(n_ranks=4, seed=0).run(make(0))
        with pytest.raises(GaError, match="replication factor"):
            World(n_ranks=4, seed=0).run(make(5))

    def test_holders_walk_the_ring(self):
        def program(ctx):
            ga = yield from ReplicatedGlobalArray.create(ctx, (16,), rf=2)
            return {b: ga.holders_of(b) for b in range(4)}

        out = World(n_ranks=4, seed=0).run(program)
        assert out[0] == {0: [0, 1], 1: [1, 2], 2: [2, 3], 3: [3, 0]}

    def test_acked_put_is_mirrored_on_every_holder(self):
        """The ack point: when put returns, primary *and* backup hold
        the bytes at the same mirror displacement."""
        def program(ctx):
            ga = yield from ReplicatedGlobalArray.create(ctx, (8,), rf=2)
            if ctx.rank == 0:
                yield from ga.put(slice(0, 8), np.arange(8.0))
            yield from ga.sync()
            view = ga.local_view().copy()
            yield from ga.sync()
            return view.tolist()

        out = World(n_ranks=4, seed=0).run(program)
        # rank r holds blocks r (primary) and (r-1) % 4 (backup);
        # blocks are rows [2r, 2r+2)
        for r in range(4):
            rows = list(range(2 * r, 2 * r + 2)) + \
                list(range(2 * ((r - 1) % 4), 2 * ((r - 1) % 4) + 2))
            for g in rows:
                assert out[r][g] == float(g), (r, g, out[r])

    def test_get_acc_is_refused(self):
        def program(ctx):
            ga = yield from ReplicatedGlobalArray.create(ctx, (8,), rf=2)
            with pytest.raises(GaError, match="read_inc"):
                yield from ga.get_acc(slice(0, 1), [1.0])
            return True

        assert World(n_ranks=2, seed=0).run(program) == [True, True]


class TestFailoverRead:
    def test_get_falls_over_to_the_backup(self):
        def program(ctx):
            ga = yield from ReplicatedGlobalArray.create(ctx, (16,), rf=2)
            if ctx.rank == 3:
                yield from ga.put(slice(0, 16), np.arange(16.0))
            yield from ga.sync()
            if ctx.rank == 0:
                yield ctx.sim.timeout(50_000.0)
                return None
            yield ctx.sim.timeout(2000.0)  # the kill has happened
            got = yield from ga.get(slice(0, 4))  # block 0: primary dead
            assert got.tolist() == [0.0, 1.0, 2.0, 3.0]
            assert ga.holders_of(0) == [1], "primary must be suspect now"
            return "read"

        plan = FaultPlan().kill(rank=0, at=1000.0)
        w = World(n_ranks=4, seed=0, fault_plan=plan)
        assert w.run(program) == [None, "read", "read", "read"]


class TestOwnerKilledMidStream:
    """The archetype scenario: the primary dies while a client is
    streaming writes at it.  Every call must return — transparently
    (rf>=2, backup applies) or with a structured error (rf=1) — and the
    run must terminate."""

    @pytest.mark.parametrize("seed", [0, 7, 77])
    def test_puts_survive_primary_death(self, seed):
        def program(ctx):
            ga = yield from ReplicatedGlobalArray.create(ctx, (16,), rf=2)
            if ctx.rank == 1:
                yield ctx.sim.timeout(50_000.0)
                return None
            if ctx.rank != 3:
                yield ctx.sim.timeout(20_000.0)
                return "bystander"
            done = 0
            for i in range(30):  # rows 4..8 are block 1 (primary = 1)
                yield from ga.put(slice(4, 8), np.full(4, float(i)))
                done += 1
                yield ctx.sim.timeout(100.0)
            got = yield from ga.get(slice(4, 8))
            assert got.tolist() == [float(done - 1)] * 4
            assert 1 not in ga.holders_of(1)
            return done

        plan = FaultPlan().kill(rank=1, at=900.0)
        w = World(n_ranks=4, seed=seed, fault_plan=plan)
        out = w.run(program)
        assert out[3] == 30, "every put must return despite the kill"

    @pytest.mark.parametrize("seed", [0, 7])
    def test_accs_apply_exactly_once_per_ack(self, seed):
        """Acked accumulates all land on the surviving replica — the
        backup's value counts exactly the completed calls."""
        def program(ctx):
            ga = yield from ReplicatedGlobalArray.create(ctx, (16,), rf=2)
            if ctx.rank == 1:
                yield ctx.sim.timeout(50_000.0)
                return None
            if ctx.rank != 0:
                yield ctx.sim.timeout(20_000.0)
                return "bystander"
            done = 0
            for _ in range(20):
                yield from ga.acc(4, [1.0])  # row 4: block 1
                done += 1
                yield ctx.sim.timeout(120.0)
            got = yield from ga.get(4)
            assert got.tolist() == [float(done)]
            return done

        plan = FaultPlan().kill(rank=1, at=1100.0)
        w = World(n_ranks=4, seed=seed, fault_plan=plan)
        assert w.run(program)[0] == 20

    def test_rf1_sole_holder_death_is_a_structured_error(self):
        def program(ctx):
            ga = yield from ReplicatedGlobalArray.create(ctx, (9,), rf=1)
            if ctx.rank == 1:
                yield ctx.sim.timeout(50_000.0)
                return None
            yield ctx.sim.timeout(1000.0)  # rank 1 (block 1) is dead
            if ctx.rank != 0:
                return "bystander"
            try:
                yield from ga.put(slice(3, 6), np.ones(3))
            except GaError as err:
                assert "no live replica" in str(err)
                return "refused"
            return "accepted"

        plan = FaultPlan().kill(rank=1, at=500.0)
        w = World(n_ranks=3, seed=0, fault_plan=plan)
        assert w.run(program)[0] == "refused"


class TestSyncPartialFailure:
    @pytest.mark.parametrize("seed", [0, 7, 77])
    def test_sync_with_a_dead_member_raises_deterministically(self, seed):
        """GA_Sync on a communicator with a dead member reports the
        failure (sync-reports-everything) instead of hanging in the
        barrier — at the same simulated time on every run."""
        def run_once():
            record = {}

            def program(ctx):
                ga = yield from ReplicatedGlobalArray.create(
                    ctx, (16,), rf=2)
                if ctx.rank == 2:
                    yield ctx.sim.timeout(50_000.0)
                    return None
                yield ctx.sim.timeout(1500.0)  # past the kill
                # touch the dead primary so the epoch has a failure
                yield from ga.put(slice(8, 12), np.ones(4))
                try:
                    yield from ga.sync()
                except RmaError as err:
                    record[ctx.rank] = (err.kind, ctx.sim.now)
                    return "reported"
                record[ctx.rank] = (None, ctx.sim.now)
                return "clean"

            plan = FaultPlan().kill(rank=2, at=1000.0)
            w = World(n_ranks=4, seed=seed, fault_plan=plan)
            out = w.run(program)
            return out, record

        out, record = run_once()
        assert out[0] == out[1] == out[3] == "reported"
        assert all(kind == "rank_failed" for kind, _ in record.values())
        out2, record2 = run_once()
        assert (out, record) == (out2, record2), \
            "partial-failure sync must be bit-deterministic"


class TestRecover:
    def test_recover_restores_the_replication_factor(self):
        def program(ctx):
            ga = yield from ReplicatedGlobalArray.create(ctx, (16,), rf=2)
            if ctx.rank == 0:
                yield from ga.put(slice(0, 16), np.arange(16.0))
            yield from ga.sync()
            if ctx.rank == 1:
                yield ctx.sim.timeout(50_000.0)
                return None
            resil = ctx.world.resil
            while not resil.suspected(ctx.rank):
                yield ctx.sim.timeout(100.0)
            yield ctx.sim.timeout(1500.0)  # detector settle
            scomm = yield from ga.recover()
            assert ga.epoch == 1
            assert scomm.size == 3
            for b in range(4):
                assert len(ga.holders_of(b)) == 2, (b, ga.holders_of(b))
                assert 1 not in ga.holders_of(b)
            got = yield from ga.get(slice(0, 16))
            assert got.tolist() == [float(g) for g in range(16)]
            return "recovered"

        plan = FaultPlan().kill(rank=1, at=800.0)
        w = World(n_ranks=4, seed=0, fault_plan=plan, resilience=True)
        assert w.run(program) == ["recovered", None, "recovered",
                                  "recovered"]
        assert w.metrics.counter("resil.recoveries").value == 1
        assert w.metrics.counter("resil.rereplicated_bytes").value > 0
        assert w.metrics.histogram("resil.mttr").count == 1

    def test_recover_without_failures_is_a_sync(self):
        def program(ctx):
            ga = yield from ReplicatedGlobalArray.create(ctx, (8,), rf=2)
            comm = yield from ga.recover()
            assert comm is ga.comm
            assert ga.epoch == 0
            return "ok"

        w = World(n_ranks=4, seed=0)
        assert w.run(program) == ["ok"] * 4
        assert w.metrics.counter("resil.recoveries").value == 0


class TestCheckpointRollback:
    def test_rf1_rolls_back_to_the_checkpoint(self):
        """With no live redundancy, recovery loses the writes after the
        last checkpoint — and exactly those."""
        def program(ctx):
            ga = yield from ReplicatedGlobalArray.create(ctx, (16,), rf=1)
            if ctx.rank == 0:
                yield from ga.put(slice(0, 16), np.arange(16.0))
            yield from ga.sync()
            yield from ga.checkpoint()
            if ctx.rank == 0:
                # post-checkpoint write into block 1 (sole holder: 1)
                yield from ga.put(slice(4, 8), np.full(4, 99.0))
            yield from ga.sync()
            if ctx.rank == 1:
                yield ctx.sim.timeout(50_000.0)
                return None
            yield ctx.sim.timeout(3000.0)  # past the kill
            yield from ga.recover(dead={1})
            got = yield from ga.get(slice(0, 16))
            expect = [float(g) for g in range(16)]  # 99s rolled back
            assert got.tolist() == expect, got.tolist()
            assert ga.holders_of(1) == [2], "shadow holder takes over"
            return "rolled-back"

        plan = FaultPlan().kill(rank=1, at=2000.0)
        w = World(n_ranks=4, seed=0, fault_plan=plan)
        assert w.run(program) == ["rolled-back", None, "rolled-back",
                                  "rolled-back"]
        assert w.metrics.counter("resil.rollbacks").value == 1

    def test_checkpoint_requires_rf1(self):
        def program(ctx):
            ga = yield from ReplicatedGlobalArray.create(ctx, (8,), rf=2)
            with pytest.raises(GaError, match="rf=1"):
                yield from ga.checkpoint()
            return True

        assert World(n_ranks=2, seed=0).run(program) == [True, True]

    def test_unreachable_checkpoint_is_an_explicit_loss(self):
        """No checkpoint ever taken: losing every replica of a block is
        reported as unrecoverable, not silently zero-filled."""
        def program(ctx):
            ga = yield from ReplicatedGlobalArray.create(ctx, (9,), rf=1)
            if ctx.rank == 1:
                yield ctx.sim.timeout(50_000.0)
                return None
            yield ctx.sim.timeout(1000.0)
            try:
                yield from ga.recover(dead={1})
            except GaError as err:
                assert "no reachable" in str(err)
                return "reported"
            return "recovered"

        plan = FaultPlan().kill(rank=1, at=500.0)
        w = World(n_ranks=3, seed=0, fault_plan=plan)
        assert w.run(program) == ["reported", None, "reported"]
