"""Span reconstruction and phase attribution from trace records."""

import math

from repro.datatypes import BYTE
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import attribute_phases, build_spans, observe_spans
from repro.runtime import World


def _put_get_world(seed=0):
    """2-rank workload: one remotely-complete put and one get."""
    world = World(n_ranks=2, seed=seed, trace=True)

    def program(ctx):
        alloc, tmems = yield from ctx.rma.expose_collective(256)
        src = ctx.mem.space.alloc(64, fill=ctx.rank + 1)
        yield from ctx.comm.barrier()
        if ctx.rank == 0:
            yield from ctx.rma.put(
                src, 0, 64, BYTE, tmems[1], 0, 64, BYTE,
                blocking=True, remote_completion=True,
            )
            yield from ctx.rma.get(
                src, 0, 64, BYTE, tmems[1], 0, 64, BYTE, blocking=True,
            )
        yield from ctx.comm.barrier()

    world.run(program)
    return world


class TestBuildSpans:
    def test_put_and_get_spans_reconstructed(self):
        world = _put_get_world()
        spans = build_spans(world.tracer)
        kinds = sorted(s.kind for s in spans)
        assert kinds == ["get", "put"]
        for span in spans:
            assert span.origin == 0
            assert span.target == 1
            assert span.nbytes == 64
            assert span.end >= span.start

    def test_phase_sums_equal_end_to_end_exactly(self):
        world = _put_get_world()
        for span in build_spans(world.tracer):
            assert math.isclose(sum(span.phases.values()), span.total,
                                rel_tol=1e-12, abs_tol=1e-12)

    def test_put_span_covers_ack_and_get_span_completes(self):
        world = _put_get_world()
        by_kind = {s.kind: s for s in build_spans(world.tracer)}
        assert "ack" in by_kind["put"].phases  # remote completion round trip
        # get ends at the origin-side unpack milestone
        assert by_kind["get"].events[-1][2] == "complete"

    def test_records_without_op_are_ignored(self):
        world = _put_get_world()
        # Two-sided barrier traffic records p2p packets with op=None.
        assert any(r.detail.get("op") is None for r in world.tracer)
        ops = {s.op for s in build_spans(world.tracer)}
        assert None not in ops


class TestAttributePhases:
    def test_aggregate_identity(self):
        spans = build_spans(_put_get_world().tracer)
        row = attribute_phases(spans)
        assert row["ops"] == len(spans) == 2
        assert math.isclose(sum(row["phases"].values()), row["end_to_end"],
                            rel_tol=1e-12, abs_tol=1e-12)

    def test_fig2_point_phase_sums_match(self):
        from repro.bench.workloads import fig2_attribute_cost

        sink = []
        fig2_attribute_cost("remote_complete", 1024, puts_per_origin=3,
                            seed=0, trace=True, world_out=sink)
        spans = build_spans(sink[0].tracer)
        assert len(spans) == 7 * 3  # n_origins * puts_per_origin
        row = attribute_phases(spans)
        assert math.isclose(sum(row["phases"].values()), row["end_to_end"],
                            rel_tol=1e-12, abs_tol=1e-12)
        assert row["phases"]["ack"] > 0  # remote completion was paid for

    def test_flush_mode_ops_have_no_ack_phase(self):
        from repro.bench.workloads import fig2_attribute_cost

        sink = []
        fig2_attribute_cost("none", 1024, puts_per_origin=3,
                            seed=0, trace=True, world_out=sink)
        row = attribute_phases(build_spans(sink[0].tracer))
        assert "ack" not in row["phases"]


class TestObserveSpans:
    def test_fills_registry(self):
        spans = build_spans(_put_get_world().tracer)
        reg = MetricsRegistry()
        observe_spans(spans, reg, mode="test")
        snap = reg.snapshot()
        names = {c["name"] for c in snap["counters"]}
        assert names == {"rma.ops"}
        hnames = {h["name"] for h in snap["histograms"]}
        assert "rma.op.latency" in hnames
        total_ops = sum(c["value"] for c in snap["counters"])
        assert total_ops == len(spans)

    def test_same_seed_same_snapshot(self):
        def snap():
            reg = MetricsRegistry()
            observe_spans(build_spans(_put_get_world(seed=3).tracer), reg)
            return reg.snapshot()

        assert snap() == snap()
