"""Unit tests for the typed metrics registry."""

import json

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    bucket_index,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter("x")
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_rejects_negative_increments(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)


class TestGauge:
    def test_set_and_add(self):
        g = Gauge("depth")
        g.set(7)
        g.add(-2)
        assert g.value == 5

    def test_values_normalized_to_float(self):
        # set()/add() accept ints on some call sites and floats on
        # others; without normalization two runs of different code paths
        # snapshot `3` vs `3.0` and byte-identical comparison breaks.
        g = Gauge("depth")
        g.set(3)
        assert isinstance(g.value, float)
        g.add(2)
        assert isinstance(g.value, float)
        assert g.value == 5.0

    def test_snapshot_determinism_across_int_float_paths(self):
        def build(via_int):
            reg = MetricsRegistry()
            reg.gauge("nic.packets").set(3 if via_int else 3.0)
            reg.gauge("depth").add(2 if via_int else 2.0)
            return json.dumps(reg.snapshot(), sort_keys=True)

        assert build(True) == build(False)


class TestBucketIndex:
    @pytest.mark.parametrize("value, idx", [
        (1.0, 0),      # (0.5, 1]
        (1.5, 1),      # (1, 2]
        (2.0, 1),
        (2.1, 2),
        (4.0, 2),
        (0.5, -1),
        (0.25, -2),
        (1024.0, 10),
    ])
    def test_boundaries(self, value, idx):
        # Bucket i covers (2**(i-1), 2**i]: the bound itself is inside.
        assert bucket_index(value) == idx
        assert value <= 2.0 ** idx
        assert value > 2.0 ** (idx - 1)

    @pytest.mark.parametrize("value", [0.0, 0, -1.0, -0.0])
    def test_non_positive_raises(self, value):
        # Regression: math.frexp(0.0) == (0.0, 0), so bucket_index(0)
        # used to silently return 0 — the (0.5, 1] bucket — instead of
        # signalling underflow.
        with pytest.raises(ValueError):
            bucket_index(value)


class TestHistogram:
    def test_stats_and_buckets(self):
        h = Histogram("lat")
        for v in (0.0, 1.0, 1.5, 3.0, 3.5):
            h.observe(v)
        assert h.count == 5
        assert h.sum == pytest.approx(9.0)
        assert h.min == 0.0 and h.max == 3.5
        assert h.zero_count == 1
        # zero bucket leads; 1.0 -> (0.5,1]; 1.5 -> (1,2]; 3.0/3.5 -> (2,4]
        assert h.buckets() == [(0.0, 1), (1.0, 1), (2.0, 1), (4.0, 2)]

    def test_mean_of_empty_is_zero(self):
        assert Histogram("x").mean == 0.0

    def test_zero_and_negative_observations_stay_out_of_log_buckets(self):
        # Regression: zero-length durations (intra-node shared-window
        # ops, analytic-train completions) must land in the dedicated
        # zero bucket, never in bucket 0 = (0.5, 1].
        h = Histogram("lat")
        h.observe(0.0)
        h.observe(-2.5)
        h.observe(0)
        assert h.zero_count == 3
        assert h.count == 3
        assert h.buckets() == [(0.0, 3)]
        # And the percentile of an all-zero histogram is zero, not 1.0.
        assert h.quantile(0.99) == 0.0

    def test_int_observations_snapshot_like_floats(self):
        a, b = Histogram("lat"), Histogram("lat")
        a.observe(3)
        b.observe(3.0)
        assert json.dumps(a.snapshot()) == json.dumps(b.snapshot())

    def test_snapshot_is_json_able(self):
        h = Histogram("lat")
        h.observe(2.5)
        json.dumps(h.snapshot())


class TestMetricsRegistry:
    def test_memoizes_by_name_and_labels(self):
        reg = MetricsRegistry()
        assert reg.counter("a", rank=1) is reg.counter("a", rank=1)
        assert reg.counter("a", rank=1) is not reg.counter("a", rank=2)
        assert reg.counter("a", rank=1) is not reg.counter("b", rank=1)

    def test_label_order_does_not_matter(self):
        reg = MetricsRegistry()
        assert reg.counter("a", x=1, y=2) is reg.counter("a", y=2, x=1)

    def test_counter_totals_aggregates_over_labels(self):
        reg = MetricsRegistry()
        reg.counter("xport.retransmit", rank=0).inc(2)
        reg.counter("xport.retransmit", rank=1).inc(3)
        reg.counter("untouched").inc(0)
        assert reg.counter_totals() == {"xport.retransmit": 5}

    def test_snapshot_deterministic_and_json_able(self):
        def build():
            reg = MetricsRegistry()
            reg.counter("c", rank=1).inc()
            reg.gauge("g").set(3.5)
            reg.histogram("h", path="0->1").observe(2.0)
            return reg.snapshot()

        a, b = build(), build()
        assert a == b
        assert json.loads(json.dumps(a)) == json.loads(json.dumps(b))

    def test_reset_drops_everything(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.gauge("g").set(1)
        reg.histogram("h").observe(1.0)
        assert len(reg) == 3
        reg.reset()
        assert len(reg) == 0
        assert reg.counter_totals() == {}
