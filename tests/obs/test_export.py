"""Chrome trace export: golden file, JSON validity, determinism.

The golden file pins the exporter's exact output on a tiny 2-rank
put/get workload.  To regenerate after an intentional format change:

    REGEN_OBS_GOLDEN=1 PYTHONPATH=src python -m pytest tests/obs/test_export.py
"""

import json
import os

import pytest

from repro.datatypes import BYTE
from repro.faults import FaultPlan
from repro.network.config import generic_rdma
from repro.obs.export import chrome_trace, write_chrome_trace
from repro.obs.spans import build_spans, observe_spans
from repro.obs.metrics import MetricsRegistry
from repro.runtime import World

GOLDEN = os.path.join(os.path.dirname(__file__), "golden_chrome_trace.json")
CHAOS_SEED = int(os.environ.get("CHAOS_SEED", "7"))


def _tiny_world(seed=0):
    """The golden workload: rank 0 puts 32B to rank 1, then gets it back."""
    world = World(n_ranks=2, seed=seed, trace=True)

    def program(ctx):
        alloc, tmems = yield from ctx.rma.expose_collective(128)
        src = ctx.mem.space.alloc(32, fill=ctx.rank + 1)
        yield from ctx.comm.barrier()
        if ctx.rank == 0:
            yield from ctx.rma.put(
                src, 0, 32, BYTE, tmems[1], 0, 32, BYTE,
                blocking=True, remote_completion=True,
            )
            yield from ctx.rma.get(
                src, 0, 32, BYTE, tmems[1], 0, 32, BYTE, blocking=True,
            )
        yield from ctx.comm.barrier()

    world.run(program)
    return world


def _chaos_world(seed=CHAOS_SEED):
    """A lossy 4-rank ring with retransmissions exercising fault records."""
    world = World(n_ranks=4, network=generic_rdma(), seed=seed,
                  trace=True, fault_plan=FaultPlan().drop(0.05))

    def program(ctx):
        alloc, tmems = yield from ctx.rma.expose_collective(2048)
        src = ctx.mem.space.alloc(2048, fill=ctx.rank + 1)
        peer = (ctx.rank + 1) % ctx.size
        for i in range(4):
            yield from ctx.rma.put(src, 0, 512, BYTE, tmems[peer],
                                   i * 512, 512, BYTE)
        yield from ctx.rma.complete()
        yield from ctx.comm.barrier()
        return True

    assert world.run(program) == [True] * 4
    return world


class TestChromeTraceGolden:
    def test_matches_golden_file(self):
        doc = chrome_trace(records=_tiny_world().tracer)
        rendered = json.loads(json.dumps(doc, sort_keys=True))
        if os.environ.get("REGEN_OBS_GOLDEN"):
            with open(GOLDEN, "w") as fh:
                json.dump(doc, fh, indent=1, sort_keys=True)
                fh.write("\n")
            pytest.skip("regenerated golden file")
        with open(GOLDEN) as fh:
            golden = json.load(fh)
        assert rendered == golden

    def test_write_round_trips(self, tmp_path):
        path = tmp_path / "trace.json"
        doc = write_chrome_trace(str(path), records=_tiny_world().tracer)
        with open(path) as fh:
            assert json.load(fh) == json.loads(json.dumps(doc))


class TestChromeTraceShape:
    def test_valid_trace_event_json(self):
        doc = chrome_trace(records=_tiny_world().tracer)
        events = doc["traceEvents"]
        assert isinstance(events, list) and events
        for ev in events:
            assert ev["ph"] in ("X", "i", "M")
            if ev["ph"] == "X":
                assert ev["dur"] >= 0
                assert isinstance(ev["ts"], (int, float))
        # one process_name metadata entry per rank
        procs = [e for e in events
                 if e["ph"] == "M" and e["name"] == "process_name"]
        assert {e["pid"] for e in procs} == {0, 1}
        # op spans live on the origin's process with per-op lanes
        ops = [e for e in events if e["ph"] == "X" and e["cat"] == "rma"
               and e["name"].startswith(("put", "get"))]
        assert len(ops) == 2
        assert all(e["pid"] == 0 for e in ops)

    def test_fault_records_become_instants(self):
        world = _chaos_world()
        doc = chrome_trace(records=world.tracer)
        names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "i"}
        assert any(n.startswith("fault.") or n.startswith("xport.")
                   for n in names)


class TestDeterminism:
    def test_same_seed_identical_trace_doc(self):
        a = chrome_trace(records=_tiny_world(seed=5).tracer)
        b = chrome_trace(records=_tiny_world(seed=5).tracer)
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_same_seed_identical_metrics(self):
        def metrics():
            world = _tiny_world(seed=9)
            reg = MetricsRegistry()
            observe_spans(build_spans(world.tracer), reg, run="x")
            return reg.snapshot()

        assert metrics() == metrics()

    def test_chaos_seed_identical_metrics_and_trace(self):
        def run():
            world = _chaos_world()
            stats = world.fault_stats()
            doc = chrome_trace(records=world.tracer)
            return stats["metrics"], stats["counters"], json.dumps(
                doc, sort_keys=True)

        a, b = run(), run()
        assert a == b
        # the fault plan actually fired, so the equality is non-trivial
        assert a[1].get("xport.retransmit", 0) > 0
