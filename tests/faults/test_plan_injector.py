"""Unit tests for fault plans and the seeded injector."""

import math

import pytest

from repro.faults import (
    FaultInjector,
    FaultPlan,
    KillSpec,
    LossSpec,
    StallSpec,
    TransportParams,
)
from repro.network import Packet
from repro.sim import RngRegistry


class TestPlanValidation:
    @pytest.mark.parametrize("field", ["drop_p", "dup_p", "corrupt_p", "delay_p"])
    @pytest.mark.parametrize("bad", [-0.1, 1.5])
    def test_probabilities_must_be_in_unit_interval(self, field, bad):
        with pytest.raises(ValueError, match="probability"):
            LossSpec(**{field: bad})

    def test_negative_delay_mean_rejected(self):
        with pytest.raises(ValueError, match="delay_mean"):
            LossSpec(delay_p=0.1, delay_mean=-1.0)

    def test_inverted_window_rejected(self):
        with pytest.raises(ValueError, match="stop"):
            LossSpec(drop_p=0.1, start=100.0, stop=50.0)

    def test_negative_stall_rejected(self):
        with pytest.raises(ValueError):
            StallSpec(rank=0, start=-1.0, duration=5.0)
        with pytest.raises(ValueError):
            StallSpec(rank=0, start=1.0, duration=-5.0)

    def test_restart_must_follow_kill(self):
        with pytest.raises(ValueError, match="restart_at"):
            KillSpec(rank=0, at=100.0, restart_at=100.0)
        KillSpec(rank=0, at=100.0, restart_at=100.1)  # ok

    def test_transport_params_validated(self):
        with pytest.raises(ValueError):
            TransportParams(retry_budget=0)
        with pytest.raises(ValueError):
            TransportParams(backoff=0.5)
        with pytest.raises(ValueError):
            TransportParams(degrade_threshold=0)


class TestPlanBuilders:
    def test_builders_chain_and_accumulate(self):
        plan = (FaultPlan()
                .drop(0.05)
                .duplicate(0.01, src=1)
                .corrupt(0.02, dst=3)
                .delay(0.1, mean=25.0, kinds=("rma.put",))
                .stall(rank=1, start=100.0, duration=50.0)
                .kill(rank=2, at=500.0, restart_at=900.0))
        assert len(plan.losses) == 4
        assert plan.losses[0].drop_p == 0.05
        assert plan.losses[1].src == 1
        assert plan.losses[3].delay_mean == 25.0
        assert plan.stalls[0].duration == 50.0
        assert plan.kills[0].restart_at == 900.0
        assert plan.active

    def test_with_transport_replaces_params(self):
        plan = FaultPlan().with_transport(retry_budget=3, backoff=1.5)
        assert plan.transport.retry_budget == 3
        assert plan.transport.backoff == 1.5
        # untouched fields keep their defaults
        assert plan.transport.rto_max == TransportParams().rto_max

    def test_empty_plan_is_inactive(self):
        assert not FaultPlan.empty().active
        assert not FaultPlan().active
        # transport tuning alone injects nothing
        assert not FaultPlan().with_transport(retry_budget=2).active


class TestMatching:
    def test_src_dst_kind_filters(self):
        spec = LossSpec(drop_p=1.0, src=0, dst=2, kinds=("rma.put",))
        assert spec.matches(0, 2, "rma.put", 10.0)
        assert not spec.matches(1, 2, "rma.put", 10.0)
        assert not spec.matches(0, 3, "rma.put", 10.0)
        assert not spec.matches(0, 2, "rma.get", 10.0)

    def test_time_window_is_half_open(self):
        spec = LossSpec(drop_p=1.0, start=100.0, stop=200.0)
        assert not spec.matches(0, 1, "x", 99.9)
        assert spec.matches(0, 1, "x", 100.0)
        assert spec.matches(0, 1, "x", 199.9)
        assert not spec.matches(0, 1, "x", 200.0)

    def test_unbounded_window_by_default(self):
        spec = LossSpec(drop_p=1.0)
        assert spec.matches(5, 7, "anything", 0.0)
        assert spec.matches(5, 7, "anything", 1e12)
        assert spec.stop == math.inf


def _packets(n, src=0, dst=1, kind="rma.put"):
    return [Packet(src=src, dst=dst, kind=kind) for _ in range(n)]


class TestInjectorDeterminism:
    def _fates(self, seed, plan, packets):
        inj = FaultInjector(plan, RngRegistry(seed))
        return [inj.fate(p, now=float(i)) for i, p in enumerate(packets)], inj

    def test_same_seed_same_fates(self):
        plan = FaultPlan().drop(0.2).duplicate(0.1).corrupt(0.1).delay(0.3)
        a, _ = self._fates(42, plan, _packets(200))
        b, _ = self._fates(42, plan, _packets(200))
        assert a == b

    def test_different_seeds_diverge(self):
        plan = FaultPlan().drop(0.2)
        a, _ = self._fates(1, plan, _packets(200))
        b, _ = self._fates(2, plan, _packets(200))
        assert a != b

    def test_paths_draw_from_independent_streams(self):
        # Fates on path 0->1 must not depend on traffic on other paths.
        plan = FaultPlan().drop(0.3)
        inj1 = FaultInjector(plan, RngRegistry(9))
        alone = [inj1.fate(p, 0.0) for p in _packets(50, dst=1)]
        inj2 = FaultInjector(plan, RngRegistry(9))
        mixed = []
        for p1, p2 in zip(_packets(50, dst=1), _packets(50, dst=2)):
            inj2.fate(p2, 0.0)  # interleaved traffic on 0->2
            mixed.append(inj2.fate(p1, 0.0))
        assert alone == mixed

    def test_stats_account_for_every_fault(self):
        plan = FaultPlan().drop(0.3).duplicate(0.2)
        fates, inj = self._fates(5, plan, _packets(500))
        assert inj.stats["examined"] == 500
        assert inj.stats["dropped"] == sum(f.drop for f in fates) > 0
        assert inj.stats["duplicated"] == sum(f.duplicate for f in fates) > 0

    def test_unmatched_packets_are_clean(self):
        plan = FaultPlan().drop(1.0, kinds=("rma.get",))
        fates, inj = self._fates(0, plan, _packets(20, kind="rma.put"))
        assert all(f.clean for f in fates)
        assert inj.stats["dropped"] == 0

    def test_hw_ack_drop_uses_pseudo_kind(self):
        plan = FaultPlan().drop(1.0, kinds=("hw.ack",))
        inj = FaultInjector(plan, RngRegistry(0))
        assert inj.drop_hw_ack(1, 0, now=0.0)
        assert inj.stats["hw_acks_dropped"] == 1
        # data packets are untouched by an ack-only spec
        assert inj.fate(Packet(src=0, dst=1, kind="rma.put"), 0.0).clean
