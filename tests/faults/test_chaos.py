"""Chaos tests: full RMA workloads under injected faults.

Every test runs a real multi-rank workload on a lossy ``generic_rdma``
fabric and asserts both liveness (the run completes — retransmission and
failure reporting mean no fault may hang the world) and safety (every
byte that was supposed to land, landed intact).

The seed is taken from ``CHAOS_SEED`` so CI can sweep a matrix of seeds
over the very same tests.
"""

import os

import pytest

from repro.datatypes import BYTE
from repro.faults import FaultPlan
from repro.mpi.constants import ERRORS_RETURN
from repro.network.config import generic_rdma
from repro.rma.target_mem import RmaError
from repro.runtime import World

SEED = int(os.environ.get("CHAOS_SEED", "7"))


def ring_put_program(ctx):
    """Each rank streams 8 puts into its right neighbour, then verifies
    the data its left neighbour wrote into it."""
    alloc, tmems = yield from ctx.rma.expose_collective(4096)
    buf = ctx.mem.space.buffer(alloc)
    src = ctx.mem.space.alloc(4096)
    sbuf = ctx.mem.space.buffer(src)
    sbuf[:] = (ctx.rank + 1) % 251
    peer = (ctx.rank + 1) % ctx.size
    for i in range(8):
        yield from ctx.rma.put(src, 0, 512, BYTE, tmems[peer],
                               (i * 512) % 4096, 512, BYTE)
    yield from ctx.rma.complete()
    yield from ctx.comm.barrier()
    writer = (ctx.rank - 1) % ctx.size
    assert (buf[:4096] == (writer + 1) % 251).all()
    return True


def run_ring(plan, seed=SEED, n_ranks=4):
    w = World(n_ranks=n_ranks, network=generic_rdma(), fault_plan=plan,
              seed=seed)
    results = w.run(ring_put_program)
    assert results == [True] * n_ranks
    return w


class TestLossyFabric:
    def test_drop_five_percent_all_data_lands(self):
        w = run_ring(FaultPlan().drop(0.05))
        stats = w.fault_stats()
        assert stats["injector"]["dropped"] > 0, "plan never fired"
        retransmits = sum(s["retransmits"]
                          for s in stats["transport"].values())
        # Not every drop forces a retransmit (a loss on the very last
        # exchange dies with the run), but recovery must have happened.
        assert retransmits > 0

    def test_corruption_detected_and_retransmitted(self):
        w = run_ring(FaultPlan().corrupt(0.05))
        stats = w.fault_stats()
        assert stats["injector"]["corrupted"] > 0, "plan never fired"
        csum_drops = sum(s["csum_drops"]
                         for s in stats["transport"].values())
        assert csum_drops > 0, "no corruption was caught by checksums"

    def test_duplicates_are_suppressed(self):
        w = run_ring(FaultPlan().duplicate(0.10))
        stats = w.fault_stats()
        assert stats["injector"]["duplicated"] > 0, "plan never fired"
        dup_rx = sum(s["dup_rx"] for s in stats["transport"].values())
        assert dup_rx > 0, "no duplicate reached a receiver"

    def test_delays_do_not_break_correctness(self):
        w = run_ring(FaultPlan().delay(0.20, mean=25.0))
        assert w.fault_stats()["injector"]["delayed"] > 0

    def test_everything_at_once(self):
        plan = (FaultPlan()
                .drop(0.03).duplicate(0.03).corrupt(0.03).delay(0.05))
        run_ring(plan)

    def test_hw_ack_loss_recovered_by_transport(self):
        # Hardware delivery acks are never retransmitted; the transport's
        # own acks must complete the operations anyway.
        def program(ctx):
            alloc, tmems = yield from ctx.rma.expose_collective(4096)
            buf = ctx.mem.space.buffer(alloc)
            src = ctx.mem.space.alloc(512)
            ctx.mem.space.buffer(src)[:] = ctx.rank + 1
            peer = (ctx.rank + 1) % ctx.size
            for i in range(8):
                yield from ctx.rma.put(src, 0, 512, BYTE, tmems[peer],
                                       i * 512, 512, BYTE,
                                       remote_completion=True)
            yield from ctx.rma.complete()
            yield from ctx.comm.barrier()
            writer = (ctx.rank - 1) % ctx.size
            assert (buf[:4096] == writer + 1).all()
            return True

        w = World(n_ranks=4, network=generic_rdma(),
                  fault_plan=FaultPlan().drop(0.5, kinds=("hw.ack",)),
                  seed=SEED)
        assert w.run(program) == [True] * 4
        assert w.fault_stats()["injector"]["hw_acks_dropped"] > 0


class TestStall:
    def test_stalled_nic_delays_but_completes(self):
        clean = run_ring(FaultPlan.empty().drop(0.0))
        # .drop(0.0) makes the plan *active* (injector armed, transport
        # on) without ever firing — the faulty-path timing baseline.
        stalled = run_ring(
            FaultPlan().drop(0.0).stall(rank=0, start=5.0, duration=500.0))
        assert stalled.fault_stats()["injector"]["stalls"] == 1
        assert stalled.sim.now > clean.sim.now


class TestKillRank:
    def test_kill_yields_failed_requests_with_structured_errors(self):
        def program(ctx):
            alloc, tmems = yield from ctx.rma.expose_collective(4096)
            src = ctx.mem.space.alloc(512)
            ctx.mem.space.buffer(src)[:] = 7
            if ctx.rank == 1:
                yield ctx.sim.timeout(100_000.0)
                return "survived"
            if ctx.rank == 0:
                failure = None
                for _ in range(200):
                    req = yield from ctx.rma.put(
                        src, 0, 512, BYTE, tmems[1], 0, 512, BYTE,
                        remote_completion=True)
                    err = yield from req.wait()
                    if req.state == "failed":
                        failure = err
                        break
                assert failure is not None, "puts at a dead rank kept passing"
                assert isinstance(failure, RmaError)
                assert failure.target == 1
                assert failure.op == "put"
                assert failure.retries is not None and failure.retries >= 1
                assert failure.sim_time is not None
                assert failure.sim_time >= 200.0
                errs = yield from ctx.rma.complete()
                assert all(isinstance(e, RmaError) for e in errs)
                # the path is now known-broken: instant failure, no timers
                req = yield from ctx.rma.put(src, 0, 512, BYTE, tmems[1],
                                             0, 512, BYTE)
                err = yield from req.wait()
                assert req.state == "failed" and isinstance(err, RmaError)
            return ctx.rank

        plan = FaultPlan().kill(rank=1, at=200.0).with_transport(retry_budget=3)
        w = World(n_ranks=3, network=generic_rdma(), fault_plan=plan,
                  seed=SEED, rma_errhandler=ERRORS_RETURN)
        results = w.run(program)
        # the killed rank's program reports no result; survivors finish
        assert results == [0, None, 2]
        assert w.fault_stats()["injector"]["kills"] == 1
        assert w.fault_stats()["dead_dropped"] > 0

    def test_errors_raise_handler_propagates(self):
        def program(ctx):
            alloc, tmems = yield from ctx.rma.expose_collective(64)
            src = ctx.mem.space.alloc(64)
            if ctx.rank == 1:
                yield ctx.sim.timeout(100_000.0)
            if ctx.rank == 0:
                for _ in range(200):
                    req = yield from ctx.rma.put(src, 0, 64, BYTE, tmems[1],
                                                 0, 64, BYTE,
                                                 remote_completion=True)
                    yield from req.wait()  # raises once the path dies
            return ctx.rank

        plan = FaultPlan().kill(rank=1, at=200.0).with_transport(retry_budget=2)
        w = World(n_ranks=2, network=generic_rdma(), fault_plan=plan, seed=SEED)
        with pytest.raises(RmaError):
            w.run(program)


class TestDegradation:
    def test_persistent_loss_degrades_hw_acks_to_software(self):
        plan = (FaultPlan()
                .drop(0.35, dst=1)
                .with_transport(degrade_threshold=3, retry_budget=50))
        w = run_ring(plan, n_ranks=4)
        assert w.nics[0].path_degraded(1), (
            "heavy loss toward rank 1 never crossed the degradation "
            "threshold")
        assert not w.nics[0].path_degraded(2)
