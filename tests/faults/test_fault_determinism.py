"""Determinism guarantees of the fault-injection machinery.

Two properties are load-bearing:

1. *Reproducibility*: the same seed and the same plan give a
   bit-identical simulation — same final clock, same fault counts, same
   per-rank timings — so a chaos failure can always be replayed.
2. *Fast-path preservation*: an empty (or absent) fault plan changes
   nothing.  The injector and the reliable transport stay unarmed and
   every simulated timestamp matches the fault-free build exactly, with
   the analytic burst path both on and off.
"""

import pytest

from repro.datatypes import BYTE
from repro.faults import FaultPlan
from repro.network import Nic
from repro.network.config import generic_rdma
from repro.runtime import World


def workload(ctx):
    """A mixed put/get workload; returns the rank's completion time."""
    alloc, tmems = yield from ctx.rma.expose_collective(2048)
    src = ctx.mem.space.alloc(2048)
    ctx.mem.space.buffer(src)[:] = ctx.rank % 251
    peer = (ctx.rank + 1) % ctx.size
    for i in range(4):
        yield from ctx.rma.put(src, 0, 256, BYTE, tmems[peer],
                               i * 256, 256, BYTE)
    yield from ctx.rma.complete()
    dst = ctx.mem.space.alloc(256)
    yield from ctx.rma.get(dst, 0, 256, BYTE, tmems[peer], 0, 256, BYTE,
                           blocking=True)
    yield from ctx.comm.barrier()
    return ctx.sim.now


def run(plan, seed=0):
    w = World(n_ranks=4, network=generic_rdma(), fault_plan=plan, seed=seed)
    times = w.run(workload)
    return w, times


class TestReproducibility:
    def test_same_seed_same_plan_bit_identical(self):
        plan = FaultPlan().drop(0.05).duplicate(0.02).corrupt(0.02).delay(0.05)
        w1, t1 = run(plan, seed=7)
        w2, t2 = run(plan, seed=7)
        assert t1 == t2
        assert w1.sim.now == w2.sim.now
        s1, s2 = w1.fault_stats(), w2.fault_stats()
        assert s1["injector"] == s2["injector"]
        assert s1["transport"] == s2["transport"]
        assert s1["counters"] == s2["counters"]

    def test_different_seed_diverges(self):
        # Sanity check that the faults genuinely depend on the seed (the
        # previous test cannot distinguish "deterministic" from "inert").
        plan = FaultPlan().drop(0.10).delay(0.10)
        _, t1 = run(plan, seed=1)
        _, t2 = run(plan, seed=2)
        assert t1 != t2


class TestFastPathPreserved:
    @pytest.mark.parametrize("burst", [True, False],
                             ids=["burst-on", "burst-off"])
    def test_empty_plan_is_timestamp_identical_to_no_plan(
            self, burst, monkeypatch):
        monkeypatch.setattr(Nic, "burst_enabled", burst)
        _, t_none = run(None)
        _, t_empty = run(FaultPlan.empty())
        assert t_empty == t_none

    def test_empty_plan_arms_nothing(self):
        w, _ = run(FaultPlan.empty())
        assert w.injector is None
        assert all(nic.transport is None for nic in w.nics.values())
        stats = w.fault_stats()
        assert not stats["injector"]
        assert stats["transport"] == {}

    def test_armed_but_inert_plan_is_reproducible(self):
        # A plan with zero-probability losses arms the transport (acks
        # on the wire legitimately shift timestamps vs. no plan at all)
        # but must still be deterministic and lossless.
        plan = FaultPlan().drop(0.0)
        w1, t1 = run(plan)
        w2, t2 = run(plan)
        assert t1 == t2
        assert w1.fault_stats()["injector"]["dropped"] == 0
        assert sum(s["retransmits"]
                   for s in w1.fault_stats()["transport"].values()) == 0
