"""Chaos on hierarchical machines: faults must cover the intra-node path.

The fast ``intra_config`` path (ranks sharing a node) skips the routed
topology but NOT the fault injector — shared-memory transports lose and
corrupt data too (torn writes, bit flips).  These tests run the ring
workload on multi-rank nodes so every run exercises both intra- and
inter-node flows under the same plan.
"""

import os

from repro.faults import FaultPlan
from repro.machine import generic_cluster
from repro.network.config import generic_rdma
from repro.runtime import World
from repro.topo import crossbar_network

from tests.faults.test_chaos import ring_put_program

SEED = int(os.environ.get("CHAOS_SEED", "7"))


def run_hierarchical(plan, machine=None, network=None, seed=SEED):
    machine = machine or generic_cluster(n_nodes=2, ranks_per_node=2)
    w = World(machine=machine, network=network or generic_rdma(),
              fault_plan=plan, seed=seed)
    results = w.run(ring_put_program)
    assert results == [True] * machine.n_ranks
    assert w.fabric.intra_node_packets > 0  # ring crosses the fast path
    return w


class TestIntraNodeChaos:
    def test_drop_recovered_on_intra_path(self):
        w = run_hierarchical(FaultPlan().drop(0.08))
        assert w.fault_stats()["injector"]["dropped"] > 0

    def test_corrupt_recovered_on_intra_path(self):
        w = run_hierarchical(FaultPlan().corrupt(0.08))
        assert w.fault_stats()["injector"]["corrupted"] > 0

    def test_full_chaos_under_round_robin_placement(self):
        # round_robin on 2x2 puts ranks {0,2} and {1,3} together, so the
        # ring's intra/inter split differs from block placement — the
        # transport must not care.
        machine = generic_cluster(n_nodes=2, ranks_per_node=2)
        machine = machine.with_placement("round_robin")
        plan = FaultPlan().drop(0.04).corrupt(0.04).delay(0.05, mean=20.0)
        w = run_hierarchical(plan, machine=machine)
        assert w.fault_stats()["injector"]["examined"] > 0

    def test_chaos_on_routed_fabric_with_shared_nodes(self):
        # Topology + hierarchy + faults at once: inter-node packets are
        # routed over the crossbar, intra-node ones fly the fast path,
        # and the injector sees both.
        machine = generic_cluster(n_nodes=2, ranks_per_node=2)
        w = run_hierarchical(
            FaultPlan().drop(0.05),
            machine=machine,
            network=crossbar_network(n_hosts=2),
        )
        assert w.topo is not None
        assert w.topo.packets_routed > 0
        assert w.fault_stats()["injector"]["dropped"] > 0
