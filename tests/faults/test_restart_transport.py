"""Restart semantics of the reliable transport (flow epochs).

A rank restart resets both ends of every flow it shares: sequence
numbering restarts at 1 under a bumped *flow epoch*.  In-flight traffic
stamped with the old epoch is provably stale — a stale sequenced packet
is dropped **without an ack** (acking would confirm a fresh-epoch
sequence number that happens to collide), and a stale selective ack is
ignored (it must not complete a fresh-epoch packet).  These tests pin
the unit-level state machine and then run a kill+restart integration
under delay chaos to see the fences fire on real traffic.
"""

import pytest

from repro.datatypes import BYTE
from repro.faults import FaultPlan
from repro.mpi.constants import ERRORS_RETURN
from repro.network.config import generic_rdma
from repro.network.packet import Packet
from repro.network.transport import payload_checksum
from repro.rma.target_mem import RmaError
from repro.runtime import World


def make_world(n_ranks=2, plan=None, seed=7):
    plan = plan if plan is not None else FaultPlan().drop(0.0)
    return World(n_ranks=n_ranks, network=generic_rdma(), fault_plan=plan,
                 seed=seed, rma_errhandler=ERRORS_RETURN)


def sequenced(src, dst, seq, epoch):
    """A wire-ready sequenced packet as the transport would emit it."""
    pkt = Packet(src=src, dst=dst, kind="p2p.msg", payload={})
    pkt.flow_seq = seq
    pkt.flow_epoch = epoch
    pkt.checksum = pkt.wire_checksum = payload_checksum(pkt)
    return pkt


class TestEpochStamping:
    def test_fresh_flows_start_at_epoch_zero(self):
        w = make_world()
        t = w.nics[0].transport
        assert t.flow_epoch(1) == 0
        pkt = Packet(src=0, dst=1, kind="p2p.msg")
        t.prepare(pkt)
        assert pkt.flow_seq == 1
        assert pkt.flow_epoch == 0

    def test_reset_flow_bumps_epoch_and_restarts_numbering(self):
        w = make_world()
        t = w.nics[0].transport
        for _ in range(3):
            t.prepare(Packet(src=0, dst=1, kind="p2p.msg"))
        t.reset_flow(1)
        assert t.flow_epoch(1) == 1
        pkt = Packet(src=0, dst=1, kind="p2p.msg")
        t.prepare(pkt)
        assert pkt.flow_seq == 1, "numbering must restart after reset"
        assert pkt.flow_epoch == 1

    def test_reset_flow_clears_outstanding_and_broken(self):
        w = make_world()
        t = w.nics[0].transport
        t.prepare(Packet(src=0, dst=1, kind="p2p.msg"))
        assert t._outstanding
        t._broken.add(1)
        t.reset_flow(1)
        assert not t._outstanding
        assert not t.is_broken(1)

    def test_reset_all_bumps_every_peer(self):
        w = make_world(n_ranks=4)
        t = w.nics[2].transport
        t.prepare(Packet(src=2, dst=0, kind="p2p.msg"))
        t.reset_all()
        # every peer fences, even those the flow never talked to yet
        for peer in (0, 1, 3):
            assert t.flow_epoch(peer) == 1


class TestStaleTraffic:
    def test_stale_packet_dropped_without_ack(self):
        w = make_world()
        rx = w.nics[1].transport
        rx.reset_flow(0)  # receiver is at epoch 1 now
        acks_before = rx.stats["acks_tx"]
        accepted = rx.rx_accept(sequenced(0, 1, seq=5, epoch=0))
        assert accepted is False
        assert rx.stats["stale_drops"] == 1
        assert rx.stats["acks_tx"] == acks_before, \
            "a stale packet must not be acked"
        # and it must not have polluted the fresh dedup window
        assert rx._rx_upto.get(0, 0) == 0

    def test_current_epoch_packet_accepted_and_acked(self):
        w = make_world()
        rx = w.nics[1].transport
        acks_before = rx.stats["acks_tx"]
        assert rx.rx_accept(sequenced(0, 1, seq=1, epoch=0)) is True
        assert rx.stats["acks_tx"] == acks_before + 1
        assert rx.stats["stale_drops"] == 0

    def test_receiver_adopts_newer_sender_epoch(self):
        w = make_world()
        rx = w.nics[1].transport
        assert rx.rx_accept(sequenced(0, 1, seq=1, epoch=0)) is True
        # sender restarted unilaterally: epoch 2, numbering from 1 again
        assert rx.rx_accept(sequenced(0, 1, seq=1, epoch=2)) is True, \
            "seq 1 of the new epoch must not be mis-deduped"
        assert rx.flow_epoch(0) == 2
        assert rx.stats["dup_rx"] == 0

    def test_stale_ack_ignored(self):
        w = make_world()
        tx = w.nics[0].transport
        pkt = Packet(src=0, dst=1, kind="p2p.msg")
        tx.prepare(pkt)
        assert (1, 1) in tx._outstanding
        tx.reset_flow(1)  # restart: old numbering is dead
        fresh = Packet(src=0, dst=1, kind="p2p.msg")
        tx.prepare(fresh)  # epoch 1, seq 1
        # a delayed pre-restart ack for "seq 1" arrives now
        tx._on_ack_packet(Packet(src=1, dst=0, kind="xport.ack",
                                 payload={"seq": 1, "epoch": 0}))
        assert tx.stats["stale_acks"] == 1
        assert (1, 1) in tx._outstanding, \
            "a stale ack must not complete a fresh-epoch packet"
        # the matching-epoch ack does complete it
        tx._on_ack_packet(Packet(src=1, dst=0, kind="xport.ack",
                                 payload={"seq": 1, "epoch": 1}))
        assert (1, 1) not in tx._outstanding


class TestKillRestartIntegration:
    @pytest.mark.parametrize("seed", [0, 7, 77])
    def test_flows_resume_after_restart_under_delay_chaos(self, seed):
        """Rank 1 dies at 400 µs and restarts at 1400 µs while rank 0
        keeps hammering it with puts under heavy delay chaos.  The run
        must terminate (no hang), puts must fail while the target is
        down, and the reset flow must carry puts again afterwards."""
        outcome = {}

        def program(ctx):
            alloc, tmems = yield from ctx.rma.expose_collective(256)
            if ctx.rank == 1:
                yield ctx.sim.timeout(30_000.0)
                return "target"
            src = ctx.mem.space.alloc(256)
            ctx.mem.space.buffer(src)[:] = 42
            failed = succeeded_after = 0
            while ctx.sim.now < 6000.0:
                req = yield from ctx.rma.put(
                    src, 0, 256, BYTE, tmems[1], 0, 256, BYTE,
                    remote_completion=True)
                err = yield from req.wait()
                if req.state == "failed":
                    failed += 1
                    assert isinstance(err, RmaError)
                    # dead target -> rank_failed; the delay chaos can
                    # also exhaust the tiny retry budget against the
                    # live (restarted) rank -> retry_exhausted
                    assert err.kind in ("rank_failed", "retry_exhausted")
                    ctx.rma.engine.acknowledge_path_failure(1)
                    ctx.rma.engine.reset_path(1)
                elif ctx.sim.now > 1400.0:
                    succeeded_after += 1
                yield ctx.sim.timeout(100.0)
            outcome["failed"] = failed
            outcome["after"] = succeeded_after
            return "origin"

        plan = (FaultPlan()
                .kill(rank=1, at=400.0, restart_at=1400.0)
                .delay(0.30, mean=60.0)
                .with_transport(retry_budget=3))
        w = World(n_ranks=2, network=generic_rdma(), fault_plan=plan,
                  seed=seed, rma_errhandler=ERRORS_RETURN)
        results = w.run(program)
        assert results[0] == "origin"
        assert outcome["failed"] > 0, "no put failed while the target was dead"
        assert outcome["after"] > 0, \
            "the restarted flow never carried a put again"
        # the restart fences must actually exist on both ends
        assert w.nics[0].transport.flow_epoch(1) >= 1
        assert w.nics[1].transport.flow_epoch(0) >= 1

    def test_restart_resets_are_coordinated(self):
        """World._restart_rank bumps the epoch on the restarted rank and
        every peer in lockstep, so both directions agree."""
        w = make_world(n_ranks=3)
        w.nics[0].transport.prepare(Packet(src=0, dst=2, kind="p2p.msg"))
        w._kill_rank(2, kill_program=False)
        w._restart_rank(2)
        for peer in (0, 1):
            assert w.nics[peer].transport.flow_epoch(2) == 1
            assert w.nics[2].transport.flow_epoch(peer) == 1
        assert not w.nics[0].transport._outstanding
