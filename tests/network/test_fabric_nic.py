"""Tests for fabric flight/ordering behaviour and NIC injection."""

import pytest

from repro.network import (
    Fabric,
    HEADER_SIZE,
    NetworkConfig,
    Nic,
    Packet,
    quadrics_like,
    seastar_portals,
)
from repro.sim import RngRegistry, Simulator


def setup_pair(config, n=2, seed=0):
    sim = Simulator()
    fabric = Fabric(sim, config, rng=RngRegistry(seed))
    nics = [Nic(sim, r, fabric) for r in range(n)]
    return sim, fabric, nics


class TestConfig:
    def test_serialization_time_floor_is_gap(self):
        cfg = NetworkConfig(gap=0.5, byte_time=0.001)
        assert cfg.serialization_time(1) == 0.5
        assert cfg.serialization_time(10_000) == 10.0

    def test_negative_fields_rejected(self):
        with pytest.raises(ValueError):
            NetworkConfig(latency=-1)

    def test_with_override(self):
        cfg = seastar_portals().with_(ordered=False)
        assert not cfg.ordered
        assert cfg.name == "seastar-portals"

    def test_preset_personalities(self):
        assert seastar_portals().ordered
        assert seastar_portals().remote_completion_events
        assert not seastar_portals().active_messages
        assert not quadrics_like().ordered
        assert quadrics_like().active_messages


class TestDelivery:
    def test_packet_arrives_after_serialization_plus_latency(self):
        cfg = NetworkConfig(latency=5.0, gap=1.0, byte_time=0.0, jitter=0.0)
        sim, fabric, nics = setup_pair(cfg)
        arrivals = []
        nics[1].register_handler("test", lambda p: arrivals.append(sim.now))
        nics[0].send(Packet(src=0, dst=1, kind="test"))
        sim.run()
        assert arrivals == [6.0]  # gap 1.0 + latency 5.0

    def test_data_bytes_charged_at_injection(self):
        cfg = NetworkConfig(latency=1.0, gap=0.0, byte_time=0.01, jitter=0.0)
        sim, fabric, nics = setup_pair(cfg)
        arrivals = []
        nics[1].register_handler("test", lambda p: arrivals.append(sim.now))
        nics[0].send(Packet(src=0, dst=1, kind="test", data_bytes=100))
        sim.run()
        assert arrivals == [pytest.approx((HEADER_SIZE + 100) * 0.01 + 1.0)]

    def test_ev_injected_triggers_at_local_completion(self):
        cfg = NetworkConfig(latency=50.0, gap=2.0, byte_time=0.0)
        sim, fabric, nics = setup_pair(cfg)
        nics[1].register_handler("test", lambda p: None)
        pkt = nics[0].send(Packet(src=0, dst=1, kind="test"))
        sim.run()
        assert pkt.ev_injected.value == 2.0  # long before arrival at 52

    def test_injection_queue_serializes(self):
        cfg = NetworkConfig(latency=1.0, gap=3.0, byte_time=0.0, jitter=0.0)
        sim, fabric, nics = setup_pair(cfg)
        arrivals = []
        nics[1].register_handler("test", lambda p: arrivals.append(sim.now))
        for _ in range(3):
            nics[0].send(Packet(src=0, dst=1, kind="test"))
        sim.run()
        assert arrivals == [4.0, 7.0, 10.0]

    def test_src_mismatch_rejected(self):
        sim, fabric, nics = setup_pair(NetworkConfig())
        with pytest.raises(ValueError):
            nics[0].send(Packet(src=1, dst=0, kind="x"))

    def test_unknown_destination_rejected(self):
        sim, fabric, nics = setup_pair(NetworkConfig(gap=0, jitter=0))
        nics[0].send(Packet(src=0, dst=9, kind="x"))
        with pytest.raises(ValueError, match="destination"):
            sim.run()

    def test_missing_handler_raises(self):
        sim, fabric, nics = setup_pair(NetworkConfig(jitter=0))
        nics[0].send(Packet(src=0, dst=1, kind="mystery"))
        with pytest.raises(RuntimeError, match="no handler"):
            sim.run()

    def test_default_handler_catches_unknown(self):
        sim, fabric, nics = setup_pair(NetworkConfig(jitter=0))
        got = []
        nics[1].register_default_handler(lambda p: got.append(p.kind))
        nics[0].send(Packet(src=0, dst=1, kind="mystery"))
        sim.run()
        assert got == ["mystery"]

    def test_duplicate_handler_rejected(self):
        sim, fabric, nics = setup_pair(NetworkConfig())
        nics[0].register_handler("k", lambda p: None)
        with pytest.raises(ValueError):
            nics[0].register_handler("k", lambda p: None)

    def test_double_attach_rejected(self):
        sim = Simulator()
        fabric = Fabric(sim, NetworkConfig())
        Nic(sim, 0, fabric)
        with pytest.raises(ValueError):
            Nic(sim, 0, fabric)


class TestAttachValidation:
    def test_rank_out_of_range_for_sized_fabric(self):
        sim = Simulator()
        fabric = Fabric(sim, NetworkConfig(), n_ranks=4)
        Nic(sim, 3, fabric)  # last valid rank
        with pytest.raises(ValueError, match="out of range"):
            Nic(sim, 4, fabric)

    def test_unsized_fabric_accepts_any_rank(self):
        sim = Simulator()
        fabric = Fabric(sim, NetworkConfig())
        Nic(sim, 1000, fabric)

    @pytest.mark.parametrize("bad", [-1, 1.5, "0", None])
    def test_non_rank_rejected(self, bad):
        sim = Simulator()
        fabric = Fabric(sim, NetworkConfig())
        with pytest.raises(ValueError, match="non-negative int"):
            fabric.attach(bad, lambda p: None)

    def test_duplicate_attach_message_names_rank(self):
        sim = Simulator()
        fabric = Fabric(sim, NetworkConfig(), n_ranks=2)
        Nic(sim, 1, fabric)
        with pytest.raises(ValueError, match="rank 1 already attached"):
            fabric.attach(1, lambda p: None)


class TestUnknownPacketKind:
    def test_error_carries_simulation_context(self):
        from repro.network import UnknownPacketKind

        sim, fabric, nics = setup_pair(NetworkConfig(jitter=0))
        pkt = Packet(src=0, dst=1, kind="mystery")
        nics[0].send(pkt)
        with pytest.raises(UnknownPacketKind) as exc_info:
            sim.run()
        err = exc_info.value
        assert isinstance(err, RuntimeError)  # old catch sites still work
        assert err.rank == 1
        assert err.kind == "mystery"
        assert err.src == 0 and err.dst == 1
        assert err.packet_id == pkt.packet_id
        assert err.sim_time == sim.now
        assert "no handler for packet kind 'mystery'" in str(err)


class TestOrdering:
    def test_ordered_fabric_preserves_fifo(self):
        cfg = NetworkConfig(ordered=True, gap=0.1, byte_time=0.001, jitter=0.0)
        sim, fabric, nics = setup_pair(cfg)
        seen = []
        nics[1].register_handler("m", lambda p: seen.append(p.payload["i"]))
        # Big packet first, tiny packets after: on an ordered network the
        # tiny ones must not overtake.
        nics[0].send(Packet(src=0, dst=1, kind="m", payload={"i": 0}, data_bytes=10_000))
        for i in range(1, 5):
            nics[0].send(Packet(src=0, dst=1, kind="m", payload={"i": i}))
        sim.run()
        assert seen == [0, 1, 2, 3, 4]

    def test_unordered_fabric_reorders_some_packets(self):
        cfg = NetworkConfig(
            ordered=False, gap=0.05, byte_time=0.0, latency=1.0, jitter=5.0
        )
        sim, fabric, nics = setup_pair(cfg, seed=3)
        seen = []
        nics[1].register_handler("m", lambda p: seen.append(p.payload["i"]))
        for i in range(50):
            nics[0].send(Packet(src=0, dst=1, kind="m", payload={"i": i}))
        sim.run()
        assert sorted(seen) == list(range(50))
        assert seen != list(range(50)), "expected at least one reorder"
        assert fabric.reorder_count > 0

    def test_unordered_is_deterministic_given_seed(self):
        def run(seed):
            cfg = NetworkConfig(ordered=False, gap=0.05, latency=1.0, jitter=5.0)
            sim, fabric, nics = setup_pair(cfg, seed=seed)
            seen = []
            nics[1].register_handler("m", lambda p: seen.append(p.payload["i"]))
            for i in range(20):
                nics[0].send(Packet(src=0, dst=1, kind="m", payload={"i": i}))
            sim.run()
            return seen

        assert run(7) == run(7)


class TestHardwareAcks:
    def test_ack_triggers_remote_complete(self):
        cfg = NetworkConfig(
            latency=5.0, gap=1.0, byte_time=0.0, jitter=0.0,
            remote_completion_events=True,
        )
        sim, fabric, nics = setup_pair(cfg)
        nics[1].register_handler("m", lambda p: None)
        pkt = nics[0].send(Packet(src=0, dst=1, kind="m", want_ack=True))
        sim.run()
        assert pkt.ev_remote_complete is not None
        # injected at 1, delivered at 6, ack back at ~11
        assert pkt.ev_remote_complete.value == pytest.approx(11.0, abs=0.1)
        assert fabric.acks_generated == 1

    def test_no_ack_event_when_fabric_lacks_completion_events(self):
        cfg = NetworkConfig(remote_completion_events=False, jitter=0.0)
        sim, fabric, nics = setup_pair(cfg)
        nics[1].register_handler("m", lambda p: None)
        pkt = nics[0].send(Packet(src=0, dst=1, kind="m", want_ack=True))
        sim.run()
        assert pkt.ev_remote_complete is None
        assert fabric.acks_generated == 0


class TestStats:
    def test_counters(self):
        cfg = NetworkConfig(jitter=0.0)
        sim, fabric, nics = setup_pair(cfg)
        nics[1].register_handler("m", lambda p: None)
        nics[0].send(Packet(src=0, dst=1, kind="m", data_bytes=10))
        sim.run()
        assert nics[0].packets_sent == 1
        assert nics[0].bytes_sent == HEADER_SIZE + 10
        assert nics[1].packets_received == 1
        assert fabric.packets_delivered == 1
        assert fabric.bytes_delivered == HEADER_SIZE + 10
