"""Ack gating on heterogeneous fabrics.

On a hierarchical machine the intra-node and inter-node paths can have
different personalities.  Whether a hardware delivery ack exists is a
*per-path* decision (``Fabric.config_for``), not a global one: a
remote-completion put over a path without completion events must degrade
to the software-ack protocol while the same put over the shared-memory
path rides the hardware ack — and both must deliver correct data.
"""

import numpy as np
import pytest

from repro.datatypes import BYTE
from repro.faults import FaultPlan
from repro.machine import MachineConfig
from repro.network import infiniband_like, shared_memory_like
from repro.runtime import World


def put_between(world, origin, target):
    """One remote-completion put origin -> target; returns target's view."""

    def program(ctx):
        alloc, tmems = yield from ctx.rma.expose_collective(64)
        if ctx.rank == origin:
            src = ctx.mem.space.alloc(16)
            ctx.mem.store(src, 0, np.arange(1, 17, dtype=np.uint8))
            yield from ctx.rma.put(src, 0, 16, BYTE, tmems[target], 0, 16,
                                   BYTE, blocking=True,
                                   remote_completion=True)
        yield from ctx.comm.barrier()
        ctx.mem.fence()
        return ctx.mem.load(alloc, 0, 16).tolist()

    return world.run(program)[target]


def hetero_world(**kw):
    # 2 nodes x 2 ranks: ranks {0,1} share a node, {2,3} the other.
    # Inter-node InfiniBand-like RDMA has no remote-completion events;
    # the intra-node shared-memory path does.
    machine = MachineConfig(n_nodes=2, ranks_per_node=2)
    return World(machine=machine, network=infiniband_like(),
                 intra_node_network=shared_memory_like(), **kw)


class TestHeteroAckGating:
    def test_personalities_differ_per_path(self):
        w = hetero_world()
        assert w.fabric.config_for(0, 1).remote_completion_events
        assert not w.fabric.config_for(0, 2).remote_completion_events

    def test_intra_node_put_uses_hardware_ack(self):
        w = hetero_world()
        assert put_between(w, 0, 1) == list(range(1, 17))
        assert w.fabric.acks_generated > 0

    def test_inter_node_put_completes_without_hardware_ack(self):
        w = hetero_world()
        assert put_between(w, 0, 2) == list(range(1, 17))
        # the inter path cannot generate completion events: the put went
        # through the software-ack protocol instead of hanging
        assert w.fabric.acks_generated == 0

    @pytest.mark.parametrize("origin,target", [(0, 1), (0, 2), (2, 0)],
                             ids=["intra", "inter", "inter-reverse"])
    def test_both_directions_with_transport_armed(self, origin, target):
        # An armed (but loss-free) reliable transport must preserve
        # completion on both kinds of path too.
        w = hetero_world(fault_plan=FaultPlan().drop(0.0), seed=3)
        assert put_between(w, origin, target) == list(range(1, 17))

    def test_lossy_inter_path_still_completes(self):
        plan = FaultPlan().drop(0.10)
        w = hetero_world(fault_plan=plan, seed=5)
        assert put_between(w, 0, 2) == list(range(1, 17))
