"""Tests for hierarchical fabrics (intra-node shared-memory paths)."""

import numpy as np
import pytest

from repro.datatypes import BYTE
from repro.machine import nec_sx9
from repro.network import seastar_portals, shared_memory_like
from repro.runtime import World


def one_put_latency(world, origin, target):
    def program(ctx):
        alloc, tmems = yield from ctx.rma.expose_collective(64)
        elapsed = None
        if ctx.rank == origin:
            src = ctx.mem.space.alloc(8)
            t0 = ctx.sim.now
            yield from ctx.rma.put(src, 0, 8, BYTE, tmems[target], 0, 8,
                                   BYTE, blocking=True,
                                   remote_completion=True)
            elapsed = ctx.sim.now - t0
        yield from ctx.comm.barrier()
        return elapsed

    return world.run(program)[origin]


class TestIntraNodePath:
    def test_same_node_put_is_faster(self):
        """2 ranks/node: rank 0->1 shares memory while rank 0->2
        crosses the switch.  Software overheads are common to both, so
        the gap is the wire round trip."""
        from repro.machine import MachineConfig

        machine = MachineConfig(n_nodes=2, ranks_per_node=2)
        t_intra = one_put_latency(
            World(machine=machine, network=seastar_portals()), 0, 1)
        t_inter = one_put_latency(
            World(machine=machine, network=seastar_portals()), 0, 2)
        assert t_intra < 0.75 * t_inter, (t_intra, t_inter)
        # the difference is about one round trip of latency delta
        delta = t_inter - t_intra
        rtt_delta = 2 * (seastar_portals().latency
                         - shared_memory_like().latency)
        assert delta == pytest.approx(rtt_delta, rel=0.3)

    def test_intra_packets_counted(self):
        machine = nec_sx9(n_nodes=2, ranks_per_node=2)
        w = World(machine=machine)
        one_put_latency(w, 0, 1)
        assert w.fabric.intra_node_packets > 0

    def test_single_rank_nodes_have_no_intra_path(self):
        w = World(n_ranks=4)
        assert w.intra_node_network is None
        one_put_latency(w, 0, 1)
        assert w.fabric.intra_node_packets == 0

    def test_explicit_intra_config_respected(self):
        machine = nec_sx9(n_nodes=2, ranks_per_node=2)
        custom = shared_memory_like().with_(latency=0.01)
        w = World(machine=machine, intra_node_network=custom)
        assert w.fabric.intra_config.latency == 0.01

    def test_intra_count_invariant_across_modes(self, monkeypatch):
        """One same-node transfer is counted once whether it rides the
        per-packet path, a NIC burst, or an analytic op-train."""
        from repro.machine import MachineConfig
        from repro.network.nic import Nic
        from repro.rma.engine import RmaEngine

        def traffic(ctx):
            alloc, tmems = yield from ctx.rma.expose_collective(512)
            if ctx.rank == 0:
                src = ctx.mem.space.alloc(256)
                for _ in range(4):
                    yield from ctx.rma.put(src, 0, 256, BYTE, tmems[1],
                                           0, 256, BYTE)
                yield from ctx.rma.complete(1)
            yield from ctx.comm.barrier()

        def count(train, burst):
            monkeypatch.setattr(RmaEngine, "train_enabled", train)
            monkeypatch.setattr(Nic, "burst_enabled", burst)
            w = World(machine=MachineConfig(n_nodes=2, ranks_per_node=2))
            w.run(traffic)
            return w.fabric.intra_node_packets

        with_train = count(train=True, burst=True)
        with_burst = count(train=False, burst=True)
        per_packet = count(train=False, burst=False)
        assert with_train == with_burst == per_packet
        assert per_packet > 0

    def test_injector_dropped_intra_packet_not_counted(self):
        """The faulty path must not count a same-node packet the
        injector drops (it was counted before the drop decision)."""
        from types import SimpleNamespace

        from repro.machine import MachineConfig
        from repro.network.packet import Packet

        w = World(machine=MachineConfig(n_nodes=1, ranks_per_node=2))
        fate = SimpleNamespace(drop=True, corrupt=False, extra_delay=0.0,
                               duplicate=False)
        w.fabric._injector = SimpleNamespace(fate=lambda p, now: fate)
        w.fabric._faulty = True

        def pkt():
            return Packet(src=0, dst=1, kind="test", payload={},
                          data_bytes=8)

        w.fabric.transmit(pkt())
        assert w.fabric.intra_node_packets == 0
        fate.drop = False
        w.fabric.transmit(pkt())
        assert w.fabric.intra_node_packets == 1

    def test_correctness_unchanged_across_the_boundary(self):
        """Data lands intact whether or not it crossed a node."""
        machine = nec_sx9(n_nodes=2, ranks_per_node=2)

        def program(ctx):
            alloc, tmems = yield from ctx.rma.expose_collective(64)
            if ctx.rank == 0:
                src = ctx.mem.space.alloc(16)
                ctx.mem.store(src, 0, np.arange(16, dtype=np.uint8))
                for dst in (1, 2, 3):
                    yield from ctx.rma.put(src, 0, 16, BYTE, tmems[dst], 0,
                                           16, BYTE, blocking=True,
                                           remote_completion=True)
            yield from ctx.comm.barrier()
            ctx.mem.fence()  # non-coherent nodes: fence before reading
            return ctx.mem.load(alloc, 0, 16).tolist()

        out = World(machine=machine).run(program)
        for r in (1, 2, 3):
            assert out[r] == list(range(16))
