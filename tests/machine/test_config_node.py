"""Tests for machine configs, presets, and node construction."""

import numpy as np
import pytest

from repro.machine import (
    MachineConfig,
    NodeConfig,
    build_nodes,
    cray_x1e,
    cray_xt5_catamount,
    cray_xt5_cnl,
    generic_cluster,
    hybrid_accelerator,
    nec_sx9,
)


class TestMachineConfig:
    def test_n_ranks(self):
        cfg = MachineConfig(n_nodes=4, ranks_per_node=2)
        assert cfg.n_ranks == 8

    def test_node_of_rank_block_distribution(self):
        cfg = MachineConfig(n_nodes=3, ranks_per_node=2)
        assert [cfg.node_of_rank(r) for r in range(6)] == [0, 0, 1, 1, 2, 2]

    def test_node_of_rank_out_of_range(self):
        cfg = MachineConfig(n_nodes=2)
        with pytest.raises(ValueError):
            cfg.node_of_rank(2)

    def test_node_config_replicates_last(self):
        special = NodeConfig(endianness="big")
        cfg = MachineConfig(n_nodes=4, nodes=[special, NodeConfig()])
        assert cfg.node_config(0).endianness == "big"
        assert cfg.node_config(3).endianness == "little"

    def test_node_config_out_of_range(self):
        with pytest.raises(ValueError):
            MachineConfig(n_nodes=2).node_config(5)

    def test_validation(self):
        with pytest.raises(ValueError):
            MachineConfig(n_nodes=0)
        with pytest.raises(ValueError):
            MachineConfig(ranks_per_node=0)
        with pytest.raises(ValueError):
            MachineConfig(nodes=[])

    def test_rejects_more_node_configs_than_nodes(self):
        # A short list replicates, but a longer one describes nodes that
        # do not exist — silently dropping the tail hid real mismatches.
        with pytest.raises(ValueError, match="NodeConfig entries"):
            MachineConfig(n_nodes=2, nodes=[NodeConfig()] * 3)
        # The boundary case (exactly n_nodes entries) stays legal.
        MachineConfig(n_nodes=3, nodes=[NodeConfig()] * 3)

    def test_rejects_placement_map_size_mismatch(self, monkeypatch):
        import repro.machine.config as config_mod

        monkeypatch.setattr(config_mod, "placement_map",
                            lambda *a, **k: (0, 0, 0))
        with pytest.raises(ValueError, match="placement map covers"):
            MachineConfig(n_nodes=2, ranks_per_node=2)

    def test_rejects_placement_map_bad_node(self, monkeypatch):
        import repro.machine.config as config_mod

        monkeypatch.setattr(config_mod, "placement_map",
                            lambda *a, **k: (0, 5))
        with pytest.raises(ValueError, match="outside"):
            MachineConfig(n_nodes=2, ranks_per_node=1)

    def test_every_placement_covers_all_ranks(self):
        for strategy in ("block", "round_robin", "random"):
            cfg = MachineConfig(n_nodes=3, ranks_per_node=2,
                                placement=strategy, placement_seed=7)
            nodes = [cfg.node_of_rank(r) for r in range(cfg.n_ranks)]
            assert sorted(nodes) == [0, 0, 1, 1, 2, 2]

    def test_with_nodes(self):
        cfg = generic_cluster(4).with_nodes(16)
        assert cfg.n_nodes == 16
        assert cfg.name == "generic-cluster"


class TestPresets:
    def test_catamount_forbids_threads(self):
        assert cray_xt5_catamount().threads_allowed is False

    def test_cnl_allows_threads(self):
        assert cray_xt5_cnl().threads_allowed is True

    def test_xt5_is_coherent(self):
        assert cray_xt5_cnl().node_config(0).coherent

    def test_sx9_is_noncoherent_with_expensive_fence(self):
        cfg = nec_sx9()
        assert not cfg.node_config(0).coherent
        assert cfg.timings.cache_fence > generic_cluster().timings.cache_fence

    def test_x1e_modeled_coherent(self):
        assert cray_x1e().node_config(0).coherent

    def test_hybrid_mixes_endianness_and_pointer_width(self):
        cfg = hybrid_accelerator(n_host_nodes=2, n_accel_nodes=2)
        assert cfg.node_config(0).endianness == "big"
        assert cfg.node_config(0).pointer_bits == 64
        assert cfg.node_config(2).endianness == "little"
        assert cfg.node_config(2).pointer_bits == 32


class TestBuildNodes:
    def test_builds_all_ranks(self):
        cfg = MachineConfig(n_nodes=2, ranks_per_node=3)
        nodes = build_nodes(cfg)
        assert [n.ranks for n in nodes] == [[0, 1, 2], [3, 4, 5]]

    def test_memory_for_wrong_rank_rejected(self):
        nodes = build_nodes(MachineConfig(n_nodes=2))
        with pytest.raises(ValueError):
            nodes[0].memory(1)

    def test_rank_memory_inherits_node_personality(self):
        nodes = build_nodes(nec_sx9(n_nodes=1, ranks_per_node=1))
        mem = nodes[0].memory(0)
        assert not mem.coherent
        assert mem.space.endianness == "little"

    def test_nic_write_vs_cpu_load_on_noncoherent_node(self):
        nodes = build_nodes(nec_sx9(n_nodes=1, ranks_per_node=1))
        mem = nodes[0].memory(0)
        a = mem.space.alloc(16)
        mem.load(a, 0, 8)  # warm the cache
        mem.nic_write(a, 0, np.full(8, 42, dtype=np.uint8))
        assert mem.load(a, 0, 8).tolist() == [0] * 8  # stale until fence
        mem.fence()
        assert mem.load(a, 0, 8).tolist() == [42] * 8

    def test_nic_write_visible_on_coherent_node(self):
        nodes = build_nodes(generic_cluster(1))
        mem = nodes[0].memory(0)
        a = mem.space.alloc(16)
        mem.load(a, 0, 8)
        mem.nic_write(a, 0, np.full(8, 42, dtype=np.uint8))
        assert mem.load(a, 0, 8).tolist() == [42] * 8

    def test_nic_read_bypasses_cache(self):
        nodes = build_nodes(nec_sx9(n_nodes=1, ranks_per_node=1))
        mem = nodes[0].memory(0)
        a = mem.space.alloc(8)
        mem.load(a, 0, 8)
        mem.nic_write(a, 0, np.full(8, 9, dtype=np.uint8))
        assert mem.nic_read(a, 0, 8).tolist() == [9] * 8
