"""Tests for per-rank address spaces."""

import numpy as np
import pytest

from repro.machine import AddressSpace, MemoryError_


@pytest.fixture
def space():
    return AddressSpace(rank=3)


class TestAlloc:
    def test_alloc_returns_handle(self, space):
        a = space.alloc(128)
        assert a.rank == 3
        assert a.size == 128

    def test_alloc_zero_filled_by_default(self, space):
        a = space.alloc(16)
        assert (space.buffer(a) == 0).all()

    def test_alloc_with_fill(self, space):
        a = space.alloc(4, fill=7)
        assert space.buffer(a).tolist() == [7, 7, 7, 7]

    def test_negative_size_rejected(self, space):
        with pytest.raises(MemoryError_):
            space.alloc(-1)

    def test_distinct_ids(self, space):
        assert space.alloc(1).alloc_id != space.alloc(1).alloc_id

    def test_bytes_allocated_tracks(self, space):
        a = space.alloc(100)
        space.alloc(50)
        assert space.bytes_allocated == 150
        space.free(a)
        assert space.bytes_allocated == 50

    def test_32bit_space_caps_allocation(self):
        small = AddressSpace(rank=0, pointer_bits=32)
        with pytest.raises(MemoryError_, match="32-bit"):
            small.alloc(2**32)

    def test_invalid_pointer_bits(self):
        with pytest.raises(ValueError):
            AddressSpace(0, pointer_bits=16)

    def test_invalid_endianness(self):
        with pytest.raises(ValueError):
            AddressSpace(0, endianness="middle")


class TestFree:
    def test_double_free_rejected(self, space):
        a = space.alloc(8)
        space.free(a)
        with pytest.raises(MemoryError_):
            space.free(a)

    def test_access_after_free_rejected(self, space):
        a = space.alloc(8)
        space.free(a)
        with pytest.raises(MemoryError_):
            space.read(a, 0, 1)


class TestReadWrite:
    def test_roundtrip(self, space):
        a = space.alloc(32)
        space.write(a, 4, np.arange(8, dtype=np.uint8))
        assert space.read(a, 4, 8).tolist() == list(range(8))

    def test_read_is_a_copy(self, space):
        a = space.alloc(8)
        got = space.read(a, 0, 8)
        got[:] = 99
        assert (space.buffer(a) == 0).all()

    def test_out_of_bounds_read(self, space):
        a = space.alloc(8)
        with pytest.raises(MemoryError_):
            space.read(a, 4, 8)

    def test_out_of_bounds_write(self, space):
        a = space.alloc(8)
        with pytest.raises(MemoryError_):
            space.write(a, 7, np.zeros(2, dtype=np.uint8))

    def test_negative_offset(self, space):
        a = space.alloc(8)
        with pytest.raises(MemoryError_):
            space.read(a, -1, 2)


class TestTypedView:
    def test_little_endian_view(self):
        sp = AddressSpace(0, endianness="little")
        a = sp.alloc(8)
        v = sp.view(a, "int32")
        v[0] = 0x01020304
        assert sp.buffer(a)[:4].tolist() == [4, 3, 2, 1]

    def test_big_endian_view(self):
        sp = AddressSpace(0, endianness="big")
        a = sp.alloc(8)
        v = sp.view(a, "int32")
        v[0] = 0x01020304
        assert sp.buffer(a)[:4].tolist() == [1, 2, 3, 4]

    def test_view_is_live(self, space):
        a = space.alloc(8)
        v = space.view(a, "int64")
        space.write(a, 0, np.array([1, 0, 0, 0, 0, 0, 0, 0], dtype=np.uint8))
        assert v[0] == 1

    def test_view_count_and_offset(self, space):
        a = space.alloc(16)
        v = space.view(a, "int32", offset=4, count=2)
        assert v.size == 2

    def test_oversized_view_rejected(self, space):
        a = space.alloc(8)
        with pytest.raises(MemoryError_):
            space.view(a, "int64", count=2)
