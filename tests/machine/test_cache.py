"""Tests for the cache models — especially NEC-SX-style staleness."""

import numpy as np
import pytest

from repro.machine import (
    AddressSpace,
    CoherentCache,
    NoCache,
    WriteThroughNonCoherentCache,
)


def make(model_cls, line_size=8):
    space = AddressSpace(rank=0)
    cache = model_cls(space, line_size=line_size)
    alloc = space.alloc(64)
    return space, cache, alloc


def by(vals):
    return np.array(vals, dtype=np.uint8)


class TestCoherentCache:
    def test_load_reflects_memory(self):
        space, cache, a = make(CoherentCache)
        space.write(a, 0, by([1, 2, 3]))
        assert cache.load(a, 0, 3).tolist() == [1, 2, 3]

    def test_remote_write_immediately_visible(self):
        space, cache, a = make(CoherentCache)
        cache.load(a, 0, 8)  # populate line
        cache.remote_write(a, 0, by([9] * 8))
        assert cache.load(a, 0, 8).tolist() == [9] * 8

    def test_store_visible_to_load(self):
        _, cache, a = make(CoherentCache)
        cache.store(a, 4, by([5, 6]))
        assert cache.load(a, 4, 2).tolist() == [5, 6]

    def test_hit_miss_counters(self):
        _, cache, a = make(CoherentCache)
        cache.load(a, 0, 8)
        assert cache.misses == 1
        cache.load(a, 0, 8)
        assert cache.hits == 1

    def test_remote_write_invalidates_lines(self):
        _, cache, a = make(CoherentCache)
        cache.load(a, 0, 8)
        cache.remote_write(a, 0, by([1] * 8))
        assert cache.invalidations == 1

    def test_is_coherent_flag(self):
        _, cache, _ = make(CoherentCache)
        assert cache.coherent


class TestNonCoherentCache:
    def test_stale_read_after_remote_write(self):
        """The paper's §III-B2 scenario: a remote put is invisible to a
        cached load until a fence."""
        space, cache, a = make(WriteThroughNonCoherentCache)
        assert cache.load(a, 0, 4).tolist() == [0, 0, 0, 0]  # caches line
        cache.remote_write(a, 0, by([7, 7, 7, 7]))
        # memory holds the new data...
        assert space.read(a, 0, 4).tolist() == [7, 7, 7, 7]
        # ...but the cached load is STALE
        assert cache.load(a, 0, 4).tolist() == [0, 0, 0, 0]

    def test_fence_makes_remote_write_visible(self):
        _, cache, a = make(WriteThroughNonCoherentCache)
        cache.load(a, 0, 4)
        cache.remote_write(a, 0, by([7, 7, 7, 7]))
        cache.fence()
        assert cache.load(a, 0, 4).tolist() == [7, 7, 7, 7]

    def test_targeted_invalidation(self):
        _, cache, a = make(WriteThroughNonCoherentCache)
        cache.load(a, 0, 16)  # two lines
        cache.remote_write(a, 0, by([7] * 16))
        cache.invalidate_range(a, 0, 8)  # invalidate first line only
        assert cache.load(a, 0, 8).tolist() == [7] * 8
        assert cache.load(a, 8, 8).tolist() == [0] * 8  # still stale

    def test_uncached_read_sees_remote_write(self):
        """A line never loaded has no stale snapshot to return."""
        _, cache, a = make(WriteThroughNonCoherentCache)
        cache.remote_write(a, 0, by([3, 3]))
        assert cache.load(a, 0, 2).tolist() == [3, 3]

    def test_local_store_writes_through(self):
        space, cache, a = make(WriteThroughNonCoherentCache)
        cache.load(a, 0, 4)
        cache.store(a, 0, by([1, 2, 3, 4]))
        assert space.read(a, 0, 4).tolist() == [1, 2, 3, 4]
        assert cache.load(a, 0, 4).tolist() == [1, 2, 3, 4]

    def test_load_spanning_lines(self):
        space, cache, a = make(WriteThroughNonCoherentCache, line_size=8)
        space.write(a, 0, np.arange(20, dtype=np.uint8))
        assert cache.load(a, 5, 10).tolist() == list(range(5, 15))

    def test_not_coherent_flag(self):
        _, cache, _ = make(WriteThroughNonCoherentCache)
        assert not cache.coherent

    def test_fence_counts_invalidations(self):
        _, cache, a = make(WriteThroughNonCoherentCache)
        cache.load(a, 0, 16)  # 2 lines at line_size=8
        cache.fence()
        assert cache.invalidations == 2

    def test_partial_line_store_refreshes_snapshot(self):
        _, cache, a = make(WriteThroughNonCoherentCache)
        cache.load(a, 0, 8)
        cache.store(a, 2, by([9]))
        got = cache.load(a, 0, 8)
        assert got[2] == 9


class TestNoCache:
    def test_always_fresh(self):
        _, cache, a = make(NoCache)
        cache.load(a, 0, 4)
        cache.remote_write(a, 0, by([5, 5, 5, 5]))
        assert cache.load(a, 0, 4).tolist() == [5] * 4

    def test_fence_is_noop(self):
        _, cache, _ = make(NoCache)
        cache.fence()


class TestLineSizeValidation:
    def test_bad_line_size(self):
        space = AddressSpace(0)
        with pytest.raises(ValueError):
            CoherentCache(space, line_size=0)
