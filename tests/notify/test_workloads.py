"""The notify workload suite and its report plumbing (ISSUE 9).

Quick-sized runs of the three workloads (notified halo, queue
pipeline, lock contention) plus the ``repro.obs.report --notify``
table — including the alignment property the shared ``format_rows``
helper guarantees for labels that contain ``:`` or ``=``.
"""

import pytest

from repro.bench.notify_workloads import (
    NOTIFY_FABRICS,
    format_notify_table,
    lock_sweep_run,
    notified_halo_time,
    pipeline_run,
    run_notify_report,
)
from repro.obs.report import format_rows


class TestHaloWorkload:
    def test_notify_beats_flush_on_flat(self):
        notify = notified_halo_time(mode="notify", n_ranks=8, iterations=4)
        flush = notified_halo_time(mode="flush", n_ranks=8, iterations=4)
        assert notify["us_per_iter"] < flush["us_per_iter"]
        assert notify["notify_latency"]["count"] > 0

    def test_halo_runs_on_a_routed_fabric(self):
        doc = notified_halo_time(mode="notify", fabric="torus", n_ranks=4,
                                 iterations=2)
        assert doc["us_per_iter"] > 0.0
        assert doc["notify_latency"]["count"] > 0


class TestPipelineWorkload:
    def test_items_flow_end_to_end(self):
        doc = pipeline_run(n_ranks=4, items=8, capacity=2)
        assert doc["items"] == 8
        assert doc["us_per_item"] > 0.0
        # every hop waited at least once on data notifications
        assert doc["pop_wait"]["count"] > 0


class TestLockWorkload:
    @pytest.mark.parametrize("kind", ["mcs", "tree"])
    def test_contention_sweep_exclusive(self, kind):
        # lock_sweep_run re-derives mutual exclusion from the recorded
        # critical-section spans and raises on any overlap.
        doc = lock_sweep_run(n_ranks=4, acquires=2, kind=kind)
        assert doc["acquires"] == 8
        # tree locks record one wait per level (local + root)
        assert doc["lock_wait"]["count"] == (16 if kind == "tree" else 8)


class TestNotifyReport:
    def test_quick_report_all_rows(self):
        doc = run_notify_report(fabrics=("flat",), seeds=(0,), quick=True)
        kinds = {(r["workload"], r.get("mode")) for r in doc["rows"]}
        assert kinds == {("halo", "notify"), ("halo", "flush"),
                         ("pipeline", None), ("lock", None)}
        table = format_notify_table(doc)
        lines = table.splitlines()
        assert len(lines) >= 2 + len(doc["rows"])

    def test_fabric_names_cover_the_three_personalities(self):
        assert set(NOTIFY_FABRICS) == {"flat", "torus", "fattree"}


class TestFormatRows:
    def test_colon_labels_do_not_break_alignment(self):
        rows = [
            ["metric", "count", "p99"],
            ["path=0:3", "12", "4.50"],
            ["nic:0/tx", "3", "10.25"],
            ["plain", "111111", "0.10"],
        ]
        out = format_rows(rows)
        lines = out.splitlines()
        # header + rule + 3 data rows, all the same rendered width
        # (modulo the trailing-space strip on left-aligned last cells)
        assert len(lines) == 5
        widths = {len(l) for l in lines[:2]}
        assert len(widths) == 1
        # numeric columns right-aligned: the p99 values line up
        cols = [l.rindex(l.split()[-1]) + len(l.split()[-1])
                for l in lines[2:]]
        assert len(set(cols)) == 1

    def test_ragged_rows_rejected(self):
        with pytest.raises(ValueError):
            format_rows([["a", "b"], ["only-one"]])

    def test_left_align_columns(self):
        rows = [["name", "v"], ["x", "1"], ["longer", "2"]]
        out = format_rows(rows, left_align=(0,))
        lines = out.splitlines()
        assert lines[2].startswith("x ")
        assert lines[3].startswith("longer")
