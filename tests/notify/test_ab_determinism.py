"""A/B determinism: the notify subsystem must be invisible when unused.

The notification board adds state to the engine and keys to op
descriptors — but only for ops that actually carry ``notify``.  These
tests pin the off-path: notify-free programs produce bit-identical
traces and simulated times whether or not the subsystem was ever
exercised in the same process, and the PR-1 perf baseline still
recomputes exactly, with the op-train fast path on and off.
"""

import json
import os

from repro.bench import perf
from repro.datatypes import BYTE
from repro.rma.engine import RmaEngine
from repro.runtime import World

BASELINE = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir,
                        "BENCH_PR1.json")


def _trace_tuples(world):
    return [
        (r.time, r.category, r.kind, r.rank,
         tuple(sorted(r.detail.items())), r.seq)
        for r in world.tracer
    ]


def _notify_free_run(seed=11):
    world = World(n_ranks=4, seed=seed, trace=True)

    def program(ctx):
        alloc, tmems = yield from ctx.rma.expose_collective(256)
        src = ctx.mem.space.alloc(8, fill=ctx.rank + 1)
        yield from ctx.comm.barrier()
        right = (ctx.rank + 1) % ctx.size
        yield from ctx.rma.put(
            src, 0, 8, BYTE, tmems[right], 0, 8, BYTE,
            blocking=True, remote_completion=True)
        yield from ctx.rma.complete_collective(ctx.comm)
        return ctx.sim.now

    out = world.run(program)
    return out, world.sim.now, _trace_tuples(world)


def _notify_using_run():
    world = World(n_ranks=2, seed=3)

    def program(ctx):
        alloc, tmems = yield from ctx.rma.expose_collective(64)
        yield from ctx.comm.barrier()
        if ctx.rank == 0:
            src = ctx.mem.space.alloc(8, fill=1)
            yield from ctx.rma.put(
                src, 0, 8, BYTE, tmems[1], 0, 8, BYTE, notify=5)
        if ctx.rank == 1:
            yield from ctx.rma.wait_notify(tmems[1], 5)
        yield from ctx.comm.barrier()
        return None

    world.run(program)


class TestNotifyFreeBitIdentity:
    def test_no_residue_from_a_notify_using_world(self):
        """Same-seed notify-free runs are bit-identical even when a
        notify-heavy world ran in between (class/global state clean)."""
        before = _notify_free_run()
        _notify_using_run()
        after = _notify_free_run()
        assert before == after

    def test_descriptors_stay_wire_identical(self):
        """Notify-free ops carry no notify keys at all — the engine's
        stats prove the board was never touched."""
        world = World(n_ranks=2)

        def program(ctx):
            alloc, tmems = yield from ctx.rma.expose_collective(64)
            src = ctx.mem.space.alloc(8, fill=2)
            yield from ctx.comm.barrier()
            yield from ctx.rma.put(
                src, 0, 8, BYTE, tmems[1 - ctx.rank], 0, 8, BYTE)
            yield from ctx.rma.complete_collective(ctx.comm)
            return None

        world.run(program)
        for ctx in world.contexts.values():
            assert ctx.rma.engine.stats["notifies"] == 0
            assert ctx.rma.engine.stats["notify_waits"] == 0
            assert ctx.rma.engine.notify_delivered() == {}


class TestPerfBaselineStillExact:
    def _compare(self):
        with open(BASELINE) as fh:
            doc = json.load(fh)
        return perf.compare_to_baseline(doc, tolerance=0.0)

    def test_baseline_with_trains_on(self):
        prev = RmaEngine.train_enabled
        RmaEngine.train_enabled = True
        try:
            assert self._compare() == []
        finally:
            RmaEngine.train_enabled = prev

    def test_baseline_with_trains_off(self):
        prev = RmaEngine.train_enabled
        RmaEngine.train_enabled = False
        try:
            assert self._compare() == []
        finally:
            RmaEngine.train_enabled = prev
