"""Notified ops under fault plans (ISSUE 9 satellite).

Three properties survive a hostile transport:

- duplicated packets never double-notify (the board dedups by op key,
  so retransmissions and dup'd fragments deliver exactly once);
- a killed producer turns a parked ``wait_notify`` into a structured
  :class:`~repro.rma.target_mem.RmaError` — never a hang;
- exactly-once delivery holds across chaos seeds (drop + dup + delay).
"""

import pytest

from repro.datatypes import BYTE
from repro.faults import FaultPlan
from repro.rma.target_mem import RmaError
from repro.runtime import World

MATCH = 3


def _producer_consumer(n_puts, consumer_body=None):
    """A program where rank 0 sends ``n_puts`` notified puts to rank 1."""

    def program(ctx):
        alloc, tmems = yield from ctx.rma.expose_collective(256)
        yield from ctx.comm.barrier()
        if ctx.rank == 0:
            src = ctx.mem.space.alloc(8, fill=9)
            for k in range(n_puts):
                yield from ctx.rma.put(
                    src, 0, 8, BYTE, tmems[1], 8 * k, 8, BYTE,
                    notify=MATCH)
        yield from ctx.rma.complete_collective(ctx.comm)
        result = None
        if ctx.rank == 1:
            result = ctx.rma.engine.notify_delivered()
        yield from ctx.comm.barrier()
        return result

    return program


class TestNoDoubleNotify:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_duplicated_packets_deliver_once(self, seed):
        plan = FaultPlan().duplicate(0.6)
        world = World(n_ranks=2, seed=seed, fault_plan=plan)
        out = world.run(_producer_consumer(4))
        delivered = out[1]
        assert sum(delivered.values()) == 4

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_chaos_exactly_once(self, seed):
        """Drop + duplicate + delay: retransmissions must not re-run
        the notification side effect."""
        plan = (FaultPlan()
                .drop(0.05)
                .duplicate(0.05)
                .delay(0.1, mean=25.0))
        world = World(n_ranks=2, seed=seed, fault_plan=plan)
        out = world.run(_producer_consumer(6))
        delivered = out[1]
        assert sum(delivered.values()) == 6


class TestKilledProducer:
    def test_wait_surfaces_structured_error_not_hang(self):
        """Rank 1 watches rank 0; rank 0 dies before notifying.  The
        wait must return an RmaError promptly — the run would hit the
        event limit if the waiter hung."""

        def program(ctx):
            alloc, tmems = yield from ctx.rma.expose_collective(64)
            yield from ctx.comm.barrier()
            if ctx.rank == 0:
                # Killed at t=40 (past the opening collectives) before
                # ever notifying.
                yield ctx.sim.timeout(10_000.0)
                return "survived"
            try:
                yield from ctx.rma.wait_notify(
                    tmems[1], MATCH, watch=[0])
            except RmaError as exc:
                return ("err", exc.kind if hasattr(exc, "kind")
                        else str(exc))
            return "no error"

        plan = FaultPlan().kill(rank=0, at=40.0, kill_program=False)
        world = World(n_ranks=2, fault_plan=plan)
        out = world.run(program)
        assert out[1][0] == "err"

    def test_wait_after_death_fails_fast(self):
        """Parking on an already-dead producer errors immediately
        instead of enqueueing a waiter that can never be served."""

        def program(ctx):
            alloc, tmems = yield from ctx.rma.expose_collective(64)
            yield from ctx.comm.barrier()
            if ctx.rank == 0:
                yield ctx.sim.timeout(10_000.0)
                return None
            yield ctx.sim.timeout(200.0)  # well past the kill
            t0 = ctx.sim.now
            try:
                yield from ctx.rma.wait_notify(
                    tmems[1], MATCH, watch=[0])
            except RmaError:
                return ctx.sim.now - t0
            return None

        plan = FaultPlan().kill(rank=0, at=40.0, kill_program=False)
        world = World(n_ranks=2, fault_plan=plan)
        out = world.run(program)
        assert out[1] is not None and out[1] < 10.0

    def test_unwatched_wait_still_satisfied_by_survivor(self):
        """A kill elsewhere must not disturb a wait served by a live
        producer."""

        def program(ctx):
            alloc, tmems = yield from ctx.rma.expose_collective(64)
            yield from ctx.comm.barrier()
            if ctx.rank == 0:
                yield ctx.sim.timeout(10_000.0)
                return None
            if ctx.rank == 2:
                src = ctx.mem.space.alloc(8, fill=4)
                yield ctx.sim.timeout(100.0)  # well past the kill
                yield from ctx.rma.put(
                    src, 0, 8, BYTE, tmems[1], 0, 8, BYTE, notify=MATCH)
                return None
            yield from ctx.rma.wait_notify(tmems[1], MATCH, watch=[2])
            return "woken"

        # Killed after the opening collectives have completed (~t=23),
        # while rank 1 is already parked.
        plan = FaultPlan().kill(rank=0, at=40.0, kill_program=False)
        world = World(n_ranks=3, fault_plan=plan)
        out = world.run(program)
        assert out[1] == "woken"
