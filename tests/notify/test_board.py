"""Notification-board semantics (DESIGN §15.1-§15.2).

The board is the target-side half of notified RMA: a notified put's
match value becomes visible to ``wait_notify``/``test_notify`` only
after the payload is applied, waiters wake FIFO without overtaking,
and ineligible ops (rmw, zero-byte, op-train batches) decline loudly
rather than silently dropping the notification.
"""

import numpy as np
import pytest

from repro.datatypes import BYTE
from repro.mpi2rma import Mpi2Error
from repro.rma.attributes import RmaAttrs
from repro.rma.target_mem import RmaError
from repro.runtime import World

MATCH = 7


class TestDeliveryAfterApply:
    def test_wait_returns_with_payload_visible(self):
        def program(ctx):
            alloc, tmems = yield from ctx.rma.expose_collective(64)
            yield from ctx.comm.barrier()
            if ctx.rank == 0:
                src = ctx.mem.space.alloc(8, fill=42)
                yield from ctx.rma.put(
                    src, 0, 8, BYTE, tmems[1], 0, 8, BYTE, notify=MATCH)
            got = None
            if ctx.rank == 1:
                yield from ctx.rma.wait_notify(tmems[1], MATCH)
                ctx.rma.engine.materialize_inbound()
                ctx.mem.fence()
                got = ctx.mem.load(alloc, 0, 8).tolist()
            yield from ctx.comm.barrier()
            return got

        out = World(n_ranks=2).run(program)
        assert out[1] == [42] * 8

    def test_count_accumulates_and_wait_consumes(self):
        def program(ctx):
            alloc, tmems = yield from ctx.rma.expose_collective(64)
            yield from ctx.comm.barrier()
            if ctx.rank == 0:
                src = ctx.mem.space.alloc(8, fill=1)
                for _ in range(3):
                    yield from ctx.rma.put(
                        src, 0, 8, BYTE, tmems[1], 0, 8, BYTE,
                        notify=MATCH)
                yield from ctx.rma.complete_collective(ctx.comm)
            else:
                yield from ctx.rma.complete_collective(ctx.comm)
            counts = None
            if ctx.rank == 1:
                before = ctx.rma.notify_count(tmems[1], MATCH)
                yield from ctx.rma.wait_notify(tmems[1], MATCH, count=2)
                after = ctx.rma.notify_count(tmems[1], MATCH)
                counts = (before, after)
            yield from ctx.comm.barrier()
            return counts

        out = World(n_ranks=2).run(program)
        assert out[1] == (3, 1)

    def test_test_notify_consume_once(self):
        def program(ctx):
            alloc, tmems = yield from ctx.rma.expose_collective(64)
            yield from ctx.comm.barrier()
            if ctx.rank == 0:
                src = ctx.mem.space.alloc(8, fill=5)
                yield from ctx.rma.put(
                    src, 0, 8, BYTE, tmems[1], 0, 8, BYTE, notify=MATCH,
                    blocking=True, remote_completion=True)
            yield from ctx.comm.barrier()
            probes = None
            if ctx.rank == 1:
                first = yield from ctx.rma.test_notify(tmems[1], MATCH)
                second = yield from ctx.rma.test_notify(tmems[1], MATCH)
                probes = (first, second)
            yield from ctx.comm.barrier()
            return probes

        out = World(n_ranks=2).run(program)
        assert out[1] == (True, False)

    def test_fifo_waiters_do_not_overtake(self):
        """Two waiters for one notification each: the first parked must
        be served by the first delivery, even though the second
        delivery arrives while both are parked."""

        def program(ctx):
            alloc, tmems = yield from ctx.rma.expose_collective(64)
            yield from ctx.comm.barrier()
            order = []
            if ctx.rank == 1:
                def waiter(tag, delay):
                    yield ctx.sim.timeout(delay)
                    yield from ctx.rma.wait_notify(tmems[1], MATCH)
                    order.append(tag)
                ctx.sim.spawn(waiter("first", 0.0))
                ctx.sim.spawn(waiter("second", 1.0))
                yield ctx.sim.timeout(5.0)  # both parked before any put
            yield from ctx.comm.barrier()
            if ctx.rank == 0:
                src = ctx.mem.space.alloc(8, fill=1)
                yield from ctx.rma.put(
                    src, 0, 8, BYTE, tmems[1], 0, 8, BYTE, notify=MATCH)
                yield ctx.sim.timeout(50.0)
                yield from ctx.rma.put(
                    src, 0, 8, BYTE, tmems[1], 0, 8, BYTE, notify=MATCH)
            yield from ctx.comm.barrier()
            yield from ctx.rma.complete_collective(ctx.comm)
            return order

        out = World(n_ranks=2).run(program)
        assert out[1] == ["first", "second"]

    def test_notify_all_releases_parked_waiters(self):
        def program(ctx):
            alloc, tmems = yield from ctx.rma.expose_collective(64)
            yield from ctx.comm.barrier()
            released = None
            woke = []
            if ctx.rank == 1:
                def waiter():
                    yield from ctx.rma.wait_notify(tmems[1], MATCH)
                    woke.append(True)
                ctx.sim.spawn(waiter())
                yield ctx.sim.timeout(2.0)
                released = yield from ctx.rma.notify_all(tmems[1], MATCH)
                yield ctx.sim.timeout(1.0)
            yield from ctx.comm.barrier()
            return (released, len(woke))

        out = World(n_ranks=2).run(program)
        assert out[1] == (1, 1)


class TestDeclines:
    def test_rmw_with_notify_declines(self):
        def program(ctx):
            alloc, tmems = yield from ctx.rma.expose_collective(64)
            yield from ctx.comm.barrier()
            err = None
            if ctx.rank == 0:
                try:
                    yield from ctx.rma.engine.issue_rmw(
                        tmems[1], 0, "int64", "fetch_add", 1,
                        attrs=RmaAttrs(notify=MATCH))
                except RmaError as exc:
                    err = str(exc)
            yield from ctx.comm.barrier()
            return err

        out = World(n_ranks=2).run(program)
        assert out[0] is not None and "notify" in out[0]

    def test_zero_byte_notify_declines(self):
        def program(ctx):
            alloc, tmems = yield from ctx.rma.expose_collective(64)
            yield from ctx.comm.barrier()
            err = None
            if ctx.rank == 0:
                src = ctx.mem.space.alloc(8)
                try:
                    yield from ctx.rma.put(
                        src, 0, 0, BYTE, tmems[1], 0, 0, BYTE,
                        notify=MATCH)
                except RmaError as exc:
                    err = str(exc)
            yield from ctx.comm.barrier()
            return err

        out = World(n_ranks=2).run(program)
        assert out[0] is not None

    def test_trains_stand_down_for_notified_ops(self):
        """A long attribute-uniform run of notified puts must not batch
        (each op's notification needs its own apply point)."""
        from repro.rma.engine import RmaEngine

        def program(ctx):
            alloc, tmems = yield from ctx.rma.expose_collective(1024)
            yield from ctx.comm.barrier()
            if ctx.rank == 0:
                src = ctx.mem.space.alloc(64, fill=3)
                for k in range(8):
                    yield from ctx.rma.put(
                        src, 0, 64, BYTE, tmems[1], 64 * k, 64, BYTE,
                        notify=MATCH)
            yield from ctx.rma.complete_collective(ctx.comm)
            return ctx.rma.engine.stats["train_ops"]

        prev = RmaEngine.train_enabled
        RmaEngine.train_enabled = True
        try:
            out = World(n_ranks=2, trace=False).run(program)
        finally:
            RmaEngine.train_enabled = prev
        assert out[0] == 0


class TestWindowApi:
    def test_win_put_notify_and_wait(self):
        def program(ctx):
            alloc = ctx.mem.space.alloc(64)
            win = yield from ctx.mpi2.win_create(alloc)
            yield from win.fence()
            if ctx.rank == 0:
                src = ctx.mem.space.alloc(8, fill=17)
                yield from win.put(src, 0, 8, BYTE, 1, 0, notify=MATCH)
            got = None
            if ctx.rank == 1:
                yield from win.wait_notify(MATCH, watch=[0])
                ctx.rma.engine.materialize_inbound()
                ctx.mem.fence()
                got = ctx.mem.load(alloc, 0, 8).tolist()
            yield from win.fence()
            yield from win.free()
            return got

        out = World(n_ranks=2).run(program)
        assert out[1] == [17] * 8

    def test_win_test_notify_after_free_is_error(self):
        def program(ctx):
            alloc = ctx.mem.space.alloc(64)
            win = yield from ctx.mpi2.win_create(alloc)
            yield from win.fence()
            yield from win.fence()
            yield from win.free()
            yield from win.wait_notify(MATCH)

        with pytest.raises(Mpi2Error, match="freed window"):
            World(n_ranks=2).run(program)


class TestMetricsPublication:
    def test_notify_latency_histogram_published(self):
        def program(ctx):
            alloc, tmems = yield from ctx.rma.expose_collective(64)
            yield from ctx.comm.barrier()
            if ctx.rank == 0:
                src = ctx.mem.space.alloc(8, fill=1)
                yield from ctx.rma.put(
                    src, 0, 8, BYTE, tmems[1], 0, 8, BYTE, notify=MATCH)
            if ctx.rank == 1:
                yield from ctx.rma.wait_notify(tmems[1], MATCH)
            yield from ctx.comm.barrier()
            return None

        world = World(n_ranks=2)
        world.run(program)
        metrics = world.collect_metrics()
        hist = metrics.histogram("notify.latency_us", rank=1)
        assert hist.count == 1
        assert hist.max > 0.0
        assert metrics.gauge("notify.delivered", rank=1).value == 1
