"""The RMA-built synchronization suite (DESIGN §15.3-§15.4).

MCS lock, hierarchical tree lock, dissemination barrier and SPSC
notification queue are constructed purely from notified RMA ops — no
two-sided messages, no simulator-level shortcuts.  The tests check the
actual concurrency contracts: mutual exclusion from recorded critical
sections, barrier separation across generations, FIFO queue delivery
under flow control.
"""

import numpy as np
import pytest

from repro.notify import (
    DisseminationBarrier,
    McsLock,
    McsTreeLock,
    NotifyQueue,
)
from repro.rma.target_mem import RmaError
from repro.runtime import World


def _assert_disjoint(spans):
    spans = sorted(spans)
    for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
        assert e1 <= s2, f"critical sections overlap: {(s1, e1)} {(s2, e2)}"


class TestMcsLock:
    @pytest.mark.parametrize("n_ranks,acquires", [(2, 3), (4, 3), (5, 2)])
    def test_mutual_exclusion(self, n_ranks, acquires):
        def program(ctx):
            lock = yield from McsLock.create(ctx, home=0)
            spans = []
            for _ in range(acquires):
                yield from lock.acquire()
                t0 = ctx.sim.now
                yield ctx.sim.timeout(2.0)  # critical section
                spans.append((t0, ctx.sim.now))
                yield from lock.release()
            yield from ctx.comm.barrier()
            return spans

        out = World(n_ranks=n_ranks).run(program)
        spans = [s for rank_spans in out for s in rank_spans]
        assert len(spans) == n_ranks * acquires
        _assert_disjoint(spans)

    def test_uncontended_acquire_is_fast(self):
        def program(ctx):
            lock = yield from McsLock.create(ctx, home=0)
            times = None
            if ctx.rank == 1:
                t0 = ctx.sim.now
                yield from lock.acquire()
                times = ctx.sim.now - t0
                yield from lock.release()
            yield from ctx.comm.barrier()
            return times

        out = World(n_ranks=2).run(program)
        # One swap on the home rank plus call overheads: microseconds,
        # not a parked wait.
        assert out[1] < 50.0

    def test_lock_metrics_published(self):
        def program(ctx):
            lock = yield from McsLock.create(ctx, home=0)
            yield from lock.acquire()
            yield ctx.sim.timeout(1.0)
            yield from lock.release()
            yield from ctx.comm.barrier()
            return None

        world = World(n_ranks=3)
        world.run(program)
        metrics = world.collect_metrics()
        assert metrics.counter("notify.lock.acquires",
                               lock="mcs").value == 3
        assert metrics.histogram("notify.lock.wait_us",
                                 lock="mcs").count == 3


class TestMcsTreeLock:
    @pytest.mark.parametrize("n_ranks,group_size", [(4, 2), (6, 3)])
    def test_mutual_exclusion_across_groups(self, n_ranks, group_size):
        def program(ctx):
            lock = yield from McsTreeLock.create(
                ctx, group_size=group_size, root=0)
            spans = []
            for _ in range(2):
                yield from lock.acquire()
                t0 = ctx.sim.now
                yield ctx.sim.timeout(1.5)
                spans.append((t0, ctx.sim.now))
                yield from lock.release()
            yield from ctx.comm.barrier()
            return spans

        out = World(n_ranks=n_ranks).run(program)
        spans = [s for rank_spans in out for s in rank_spans]
        assert len(spans) == n_ranks * 2
        _assert_disjoint(spans)


class TestDisseminationBarrier:
    @pytest.mark.parametrize("n_ranks", [2, 3, 5, 8])
    def test_no_rank_exits_before_last_enters(self, n_ranks):
        def program(ctx):
            bar = yield from DisseminationBarrier.create(ctx)
            # Skewed arrivals: rank r enters the barrier at ~3r µs.
            yield ctx.sim.timeout(3.0 * ctx.rank)
            enter = ctx.sim.now
            yield from bar.wait()
            exit_ = ctx.sim.now
            yield from ctx.comm.barrier()
            return (enter, exit_)

        out = World(n_ranks=n_ranks).run(program)
        last_enter = max(e for e, _ in out)
        first_exit = min(x for _, x in out)
        assert first_exit >= last_enter

    def test_generations_stay_separated(self):
        def program(ctx):
            bar = yield from DisseminationBarrier.create(ctx)
            marks = []
            for gen in range(3):
                yield ctx.sim.timeout(1.0 + ctx.rank * (gen + 1))
                marks.append(("enter", gen, ctx.sim.now))
                yield from bar.wait()
                marks.append(("exit", gen, ctx.sim.now))
            yield from ctx.comm.barrier()
            return marks

        n = 4
        out = World(n_ranks=n).run(program)
        for gen in range(3):
            last_enter = max(m[2] for ms in out for m in ms
                             if m[:2] == ("enter", gen))
            first_exit = min(m[2] for ms in out for m in ms
                             if m[:2] == ("exit", gen))
            assert first_exit >= last_enter


class TestNotifyQueue:
    def test_fifo_delivery_with_flow_control(self):
        items = 7
        capacity = 2

        def program(ctx):
            q = yield from NotifyQueue.create(
                ctx, producer=0, consumer=1, capacity=capacity,
                slot_bytes=16)
            got = None
            if ctx.rank == 0:
                for i in range(items):
                    payload = np.full(16, i + 1, dtype=np.uint8)
                    yield from q.push(payload)
            if ctx.rank == 1:
                got = []
                for _ in range(items):
                    data = yield from q.pop()
                    got.append(int(data[0]))
            yield from ctx.comm.barrier()
            return got

        out = World(n_ranks=2).run(program)
        assert out[1] == [i + 1 for i in range(items)]

    def test_wrong_rank_push_raises(self):
        def program(ctx):
            q = yield from NotifyQueue.create(ctx, producer=0, consumer=1)
            err = None
            if ctx.rank == 1:
                try:
                    yield from q.push(np.zeros(64, dtype=np.uint8))
                except RmaError as exc:
                    err = exc.op
            yield from ctx.comm.barrier()
            return err

        out = World(n_ranks=2).run(program)
        assert out[1] == "queue.push"

    def test_killed_producer_fails_pop(self):
        from repro.faults import FaultPlan

        def program(ctx):
            q = yield from NotifyQueue.create(ctx, producer=0, consumer=1)
            if ctx.rank == 0:
                yield ctx.sim.timeout(10_000.0)
                return None
            try:
                data = yield from q.pop()
            except RmaError:
                return "structured error"
            return "popped"

        plan = FaultPlan().kill(rank=0, at=60.0, kill_program=False)
        out = World(n_ranks=2, fault_plan=plan).run(program)
        assert out[1] == "structured error"
