"""Tests for location consistency and trace-to-history integration."""

import numpy as np

from repro.consistency import (
    History,
    LocationPomset,
    check_read_your_writes,
    history_from_tracer,
)
from repro.datatypes import BYTE
from repro.network import quadrics_like
from repro.rma import RmaAttrs
from repro.runtime import World


class TestLocationPomset:
    def test_initial_value_readable(self):
        p = LocationPomset("x", initial=0)
        assert p.legal_read_values(0) == [0]

    def test_own_write_hides_initial(self):
        p = LocationPomset("x")
        p.write(0, 10)
        vals = p.legal_read_values(0)
        assert vals == [10]  # own program order dominates the initial write

    def test_unsynchronized_remote_write_leaves_frontier_wide(self):
        """Without synchronization a reader may see either value — the
        non-coherent-machine behaviour (paper §III-B2)."""
        p = LocationPomset("x")
        p.write(0, 10)
        assert sorted(p.legal_read_values(1)) == [0, 10]

    def test_synchronization_narrows_frontier(self):
        p = LocationPomset("x")
        p.write(0, 10)
        p.synchronize(before_process=0, after_process=1)  # e.g. a fence pair
        assert p.legal_read_values(1) == [10]

    def test_two_unordered_writers(self):
        p = LocationPomset("x")
        p.write(0, 1)
        p.write(1, 2)
        vals = sorted(p.legal_read_values(2))
        assert vals == [0, 1, 2]  # nothing dominated for an outside reader

    def test_observation_pins_reader_forward(self):
        p = LocationPomset("x")
        w1 = p.write(0, 1)
        p.write(0, 2)  # dominates w1 in program order
        p.observe(1, w1)
        # reader saw w1; w2 not yet known -> may see w1 or w2? w1 is not
        # dominated by anything the reader knows, so both remain legal
        assert sorted(p.legal_read_values(1)) == [1, 2]

    def test_is_legal_read(self):
        p = LocationPomset("x")
        p.write(0, 1)
        assert p.is_legal_read(1, 0)
        assert p.is_legal_read(1, 1)
        assert not p.is_legal_read(1, 99)


class TestTraceIntegration:
    def test_history_extracted_from_traced_run(self):
        """A put-then-ordered-get run yields a read-your-writes-clean
        history straight from the engine trace."""

        def program(ctx):
            alloc, tmems = yield from ctx.rma.expose_collective(16)
            if ctx.rank == 1:
                src = ctx.mem.space.alloc(8, fill=42)
                dst = ctx.mem.space.alloc(8)
                attrs = RmaAttrs(ordering=True, blocking=True)
                yield from ctx.rma.put(src, 0, 8, BYTE, tmems[0], 0, 8, BYTE,
                                       attrs=attrs)
                yield from ctx.rma.get(dst, 0, 8, BYTE, tmems[0], 0, 8, BYTE,
                                       attrs=attrs)
            yield from ctx.comm.barrier()

        w = World(n_ranks=2, network=quadrics_like(), trace=True)
        w.run(program)
        hist = history_from_tracer(w.tracer)
        writes = [o for o in hist.ops if o.kind == "write"]
        reads = [o for o in hist.ops if o.kind == "read"]
        assert len(writes) == 1
        assert len(reads) == 1
        assert reads[0].value == (42,) * 8
        assert check_read_your_writes(hist) == []

    def test_unordered_run_can_produce_violating_history(self):
        """Attribute-free put+get on an unordered fabric: for some seed
        the extracted history violates read-your-writes — demonstrating
        why the ordering attribute exists."""

        def program(ctx):
            alloc, tmems = yield from ctx.rma.expose_collective(16)
            if ctx.rank == 1:
                src = ctx.mem.space.alloc(8, fill=42)
                dst = ctx.mem.space.alloc(8)
                yield from ctx.rma.put(src, 0, 8, BYTE, tmems[0], 0, 8, BYTE)
                yield from ctx.rma.get(dst, 0, 8, BYTE, tmems[0], 0, 8, BYTE,
                                       blocking=True)
            yield from ctx.comm.barrier()

        violated = False
        for seed in range(30):
            w = World(n_ranks=2, network=quadrics_like(), seed=seed,
                      trace=True)
            w.run(program)
            hist = history_from_tracer(w.tracer)
            if check_read_your_writes(hist):
                violated = True
                break
        assert violated

    def test_large_transfers_not_traced(self):
        def program(ctx):
            alloc, tmems = yield from ctx.rma.expose_collective(1024)
            if ctx.rank == 1:
                src = ctx.mem.space.alloc(512)
                yield from ctx.rma.put(src, 0, 512, BYTE, tmems[0], 0, 512,
                                       BYTE, blocking=True)
            yield from ctx.comm.barrier()

        w = World(n_ranks=2, trace=True)
        w.run(program)
        assert history_from_tracer(w.tracer).ops == []
