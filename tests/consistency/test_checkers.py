"""Litmus tests for the consistency checkers (§II-B / §III-A models)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.consistency import (
    History,
    Skipped,
    check_causal,
    check_read_your_writes,
    check_sequential,
)


def h_write_read_ok():
    h = History()
    h.write(0, "x", 1)
    h.read(0, "x", 1)
    return h


class TestReadYourWrites:
    def test_clean_history_passes(self):
        assert check_read_your_writes(h_write_read_ok()) == []

    def test_stale_own_read_detected(self):
        h = History()
        h.write(0, "x", 1)
        h.read(0, "x", 0)  # never saw own write
        v = check_read_your_writes(h)
        assert len(v) == 1
        assert "wrote 1" in v[0].message

    def test_guarantee_waived_when_other_writers_exist(self):
        """The paper scopes the property to unaltered destinations."""
        h = History()
        h.write(0, "x", 1)
        h.write(1, "x", 2)  # another source altered it
        h.read(0, "x", 2)
        assert check_read_your_writes(h) == []

    def test_latest_write_wins(self):
        h = History()
        h.write(0, "x", 1)
        h.write(0, "x", 2)
        h.read(0, "x", 1)  # stale: own older write
        assert len(check_read_your_writes(h)) == 1

    def test_multiple_locations_independent(self):
        h = History()
        h.write(0, "x", 1)
        h.write(0, "y", 2)
        h.read(0, "x", 1)
        h.read(0, "y", 2)
        assert check_read_your_writes(h) == []


class TestCausal:
    def test_clean_history_passes(self):
        assert check_causal(h_write_read_ok()) == []

    def test_causally_overwritten_read_detected(self):
        # P0: w(x,1); P1 reads 1 (so w1 -> r), then writes x=2;
        # P0 then reads... P2 reads 2 then reads 1: reading 1 after
        # having (causally) seen 2 violates causality.
        h = History()
        h.write(0, "x", 1)
        h.write(1, "x", 2)
        # make w(x,1) causally precede w(x,2):
        # P1 read 1 before writing 2
        h2 = History()
        h2.write(0, "x", 1)
        h2.read(1, "x", 1)
        h2.write(1, "x", 2)
        h2.read(2, "x", 2)
        h2.read(2, "x", 1)  # goes back to the causally older write
        v = check_causal(h2)
        assert len(v) == 1
        assert v[0].model == "causal"

    def test_concurrent_writes_any_order_is_causal(self):
        """Unrelated accesses may be observed in any order (paper: the
        Causal Consistency model)."""
        h = History()
        h.write(0, "x", 1)
        h.write(1, "x", 2)  # concurrent with the other write
        h.read(2, "x", 2)
        h.read(2, "x", 1)  # OK: w1 and w2 are causally unrelated
        assert check_causal(h) == []

    def test_program_order_is_causal(self):
        h = History()
        h.write(0, "x", 1)
        h.write(0, "x", 2)  # program order: 1 -> 2
        h.read(1, "x", 2)
        h.read(1, "x", 1)  # reads-from w2 then goes back past it
        v = check_causal(h)
        assert len(v) == 1


class TestSequential:
    def test_clean_history_passes(self):
        assert check_sequential(h_write_read_ok()) == []

    def test_classic_iriw_violation(self):
        """Independent reads of independent writes observed in opposite
        orders — causally fine, sequentially impossible."""
        h = History()
        h.write(0, "x", 1)
        h.write(1, "y", 1)
        # P2 sees x then not-y; P3 sees y then not-x
        h.read(2, "x", 1)
        h.read(2, "y", 0)  # initial
        h.read(3, "y", 1)
        h.read(3, "x", 0)  # initial
        v = check_sequential(h)
        assert len(v) == 1
        # but it IS causally consistent
        assert check_causal(h) == []

    def test_interleaving_found_when_exists(self):
        h = History()
        h.write(0, "x", 1)
        h.read(1, "x", 0)  # read before the write in the serialization
        h.read(1, "x", 1)
        assert check_sequential(h) == []

    def test_write_read_write_read(self):
        h = History()
        h.write(0, "x", 1)
        h.write(1, "x", 2)
        h.read(0, "x", 2)
        h.read(1, "x", 1)
        # needs w1 < r0(2)=... w0=1 < w1=2 < r0 reads 2 ok; r1 reads 1
        # after w1=2 would be stale -> no serialization exists
        assert len(check_sequential(h)) == 1

    def test_cap_on_history_size(self):
        h = History()
        for i in range(20):
            h.write(0, "x", i)
        outcome = check_sequential(h)
        assert isinstance(outcome, Skipped)
        assert outcome.model == "sequential"
        assert "capped" in str(outcome)
        # The marker is deliberately falsy and empty so legacy
        # "no violations" call-sites keep working unchanged.
        assert not outcome
        assert len(outcome) == 0
        assert list(outcome) == []


class TestModelLadder:
    """sequential ⊆ causal ⊆ read-your-writes (admissibility)."""

    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_stronger_model_implies_weaker(self, data):
        h = History()
        n_procs = data.draw(st.integers(1, 3))
        n_ops = data.draw(st.integers(1, 8))
        written = {}
        value_counter = [0]
        for _ in range(n_ops):
            proc = data.draw(st.integers(0, n_procs - 1))
            loc = data.draw(st.sampled_from(["x", "y"]))
            if data.draw(st.booleans()):
                value_counter[0] += 1
                h.write(proc, loc, value_counter[0])
                written.setdefault(loc, []).append(value_counter[0])
            else:
                choices = [0] + written.get(loc, [])
                h.read(proc, loc, data.draw(st.sampled_from(choices)))
        outcome = check_sequential(h)
        if isinstance(outcome, Skipped):
            return
        seq_ok = outcome == []
        causal_ok = check_causal(h) == []
        ryw_ok = check_read_your_writes(h) == []
        if seq_ok:
            assert causal_ok, f"sequential but not causal: {h.ops}"
        if causal_ok:
            assert ryw_ok, f"causal but not read-your-writes: {h.ops}"


class TestHistory:
    def test_program_order_indices(self):
        h = History()
        a = h.write(0, "x", 1)
        b = h.write(0, "x", 2)
        c = h.write(1, "x", 3)
        assert (a.po_index, b.po_index, c.po_index) == (0, 1, 0)

    def test_writer_of_resolves(self):
        h = History()
        w = h.write(0, "x", 5)
        r = h.read(1, "x", 5)
        assert h.writer_of(r) is w

    def test_writer_of_initial_value(self):
        h = History()
        r = h.read(0, "x", 0)
        assert h.writer_of(r) is None

    def test_ambiguous_values_rejected(self):
        h = History()
        h.write(0, "x", 5)
        h.write(1, "x", 5)
        r = h.read(2, "x", 5)
        with pytest.raises(ValueError, match="ambiguous"):
            h.writer_of(r)

    def test_invalid_kind_rejected(self):
        from repro.consistency import MemOp

        with pytest.raises(ValueError):
            MemOp(0, "update", "x", 1, 0)
