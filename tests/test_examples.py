"""Smoke tests: every example must run clean (they self-verify)."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES / f"{name}.py"
    )
    mod = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = mod
    spec.loader.exec_module(mod)
    mod.main()


@pytest.mark.parametrize(
    "name",
    ["quickstart", "global_counter", "halo_exchange", "pgas_array",
     "heterogeneous", "consistency_litmus"],
)
def test_example_runs(name, capsys):
    run_example(name)
    out = capsys.readouterr().out
    assert out.strip(), f"{name} produced no output"


def test_examples_directory_complete():
    """The deliverable: quickstart plus at least two domain scenarios."""
    present = {p.stem for p in EXAMPLES.glob("*.py")}
    assert "quickstart" in present
    assert len(present) >= 3
