"""Tests for the sweep runner and table formatter in the bench harness."""

from repro.bench.harness import Series, format_table, run_sweep


class TestRunSweep:
    def test_default_x_key_is_size(self):
        seen = []

        def fn(size, factor):
            seen.append((size, factor))
            return size * factor

        out = run_sweep(fn, [1, 2, 4], {"double": {"factor": 2}})
        assert out["double"].values == [2, 4, 8]
        assert seen == [(1, 2), (2, 2), (4, 2)]

    def test_x_key_override(self):
        def fn(nbytes, mode):
            return nbytes + (100 if mode == "fast" else 0)

        out = run_sweep(
            fn, [8, 16], {"fast": {"mode": "fast"}, "slow": {"mode": "slow"}},
            x_key="nbytes",
        )
        assert out["fast"].values == [108, 116]
        assert out["slow"].values == [8, 16]

    def test_x_key_not_forwarded_to_fn(self):
        # fn has no ``x_key`` parameter; forwarding it would TypeError.
        def fn(size):
            return float(size)

        out = run_sweep(fn, [3], {"only": {}}, x_key="size")
        assert out["only"].values == [3.0]

    def test_common_kwargs_forwarded(self):
        def fn(size, base, extra):
            return size + base + extra

        out = run_sweep(fn, [1], {"s": {"extra": 10}}, base=100)
        assert out["s"].values == [111]

    def test_series_params_beat_common(self):
        def fn(size, mode):
            return 1.0 if mode == "override" else 0.0

        out = run_sweep(fn, [1], {"s": {"mode": "override"}}, mode="common")
        assert out["s"].values == [1.0]


class TestFormatTable:
    def _table(self):
        series = {
            "strawman": Series("strawman", [1.5, 20.25]),
            "mpi2_fence_mode": Series("mpi2_fence_mode", [3.0, 40.5]),
        }
        return format_table("Latency", "bytes", [8, 4096], series)

    def test_columns_align(self):
        lines = self._table().splitlines()
        header = lines[2]
        rows = lines[4:6]
        pipes = [i for i, c in enumerate(header) if c == "|"]
        assert pipes, "header has no column separators"
        for row in rows:
            assert [i for i, c in enumerate(row) if c == "|"] == pipes
            assert len(row) == len(header)

    def test_values_right_aligned_in_label_width(self):
        out = self._table()
        lines = out.splitlines()
        header, first_row = lines[2], lines[4]
        # The x column is 12 wide and right-aligned.
        assert header[:12].endswith("bytes")
        assert first_row[:12].endswith("8")
        # Wide labels widen their column; values stay right-aligned.
        col = header.index("mpi2_fence_mode")
        assert first_row[col : col + len("mpi2_fence_mode")].endswith("3.000")

    def test_separator_spans_header(self):
        lines = self._table().splitlines()
        assert lines[3] == "-" * len(lines[2])

    def test_unit_footer(self):
        assert self._table().splitlines()[-1] == "(values in µs)"
