"""The ``--compare`` regression gate: simulated time must never drift.

``BENCH_PR1.json`` at the repo root records the flat-fabric simulated
times from the PR-1 optimization pass.  Recomputing them must match to
the bit on any machine — this is the executable form of the
"topology=None keeps the flat path bit-identical" guarantee.
"""

import json
import os

import pytest

from repro.bench import perf

BASELINE = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir,
                        "BENCH_PR1.json")


@pytest.fixture
def baseline_doc():
    with open(BASELINE) as fh:
        return json.load(fh)


class TestCompareToBaseline:
    def test_repo_baseline_matches_bit_for_bit(self, baseline_doc):
        assert perf.compare_to_baseline(baseline_doc, tolerance=0.0) == []

    def test_halo_drift_detected(self, baseline_doc):
        baseline_doc["results"]["halo"]["sim_us_per_iter"] += 0.5
        failures = perf.compare_to_baseline(baseline_doc)
        assert len(failures) == 1
        assert "halo.sim_us_per_iter" in failures[0]

    def test_fig2_drift_detected(self, baseline_doc):
        points = baseline_doc["results"]["fig2"]["points"]
        key = sorted(points)[0]
        points[key]["sim_us"] *= 1.01
        failures = perf.compare_to_baseline(baseline_doc)
        assert len(failures) == 1
        assert f"fig2.{key}.sim_us" in failures[0]

    def test_tolerance_forgives_small_drift(self, baseline_doc):
        baseline_doc["results"]["halo"]["sim_us_per_iter"] *= 1.0001
        assert perf.compare_to_baseline(baseline_doc, tolerance=1e-3) == []


class TestCompareCli:
    def test_clean_compare_exits_zero_and_writes_nothing(
            self, tmp_path, monkeypatch, capsys):
        baseline = os.path.abspath(BASELINE)
        monkeypatch.chdir(tmp_path)
        assert perf.main(["--compare", baseline]) == 0
        assert os.listdir(tmp_path) == []  # gate mode never writes
        assert "OK" in capsys.readouterr().out

    def test_drifted_baseline_exits_nonzero(self, tmp_path, capsys):
        with open(BASELINE) as fh:
            doc = json.load(fh)
        doc["results"]["halo"]["sim_us_per_iter"] += 1.0
        tampered = tmp_path / "tampered.json"
        tampered.write_text(json.dumps(doc))
        assert perf.main(["--compare", str(tampered)]) == 1
        assert "DRIFT" in capsys.readouterr().out

    def test_unreadable_baseline_is_a_usage_error(self, tmp_path):
        with pytest.raises(SystemExit):
            perf.main(["--compare", str(tmp_path / "missing.json")])
