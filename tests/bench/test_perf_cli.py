"""CLI behaviour of the wall-clock perf harness (output-file safety)."""

import json
import os

import pytest

from repro.bench import perf


FAKE_RESULTS = {
    "kernel_callbacks_per_sec": 1e6,
    "kernel_process_events_per_sec": 2e6,
    "halo": {"wall_sec": 0.1, "sim_us_per_iter": 45.0, "n_ranks": 8,
             "halo_bytes": 8192, "iterations": 40},
    "fig2": {"wall_sec_total": 0.5, "puts_per_origin": 50,
             "points": {"none/1024": {"wall_sec": 0.1, "sim_us": 242.2}}},
}


@pytest.fixture
def fast_perf(monkeypatch, tmp_path):
    """Stub the (slow) benchmark suite and run from a temp cwd."""
    monkeypatch.setattr(perf, "run_all", lambda quick=False: dict(FAKE_RESULTS))
    monkeypatch.chdir(tmp_path)
    return tmp_path


class TestOutFile:
    def test_default_out_is_bench_json(self, fast_perf):
        assert perf.main([]) == 0
        assert os.path.exists("BENCH.json")
        assert not os.path.exists("BENCH_PR1.json")
        with open("BENCH.json") as fh:
            doc = json.load(fh)
        assert doc["results"]["halo"]["sim_us_per_iter"] == 45.0

    def test_refuses_to_clobber_without_force(self, fast_perf, capsys):
        with open("BENCH.json", "w") as fh:
            fh.write("precious baseline\n")
        with pytest.raises(SystemExit) as exc:
            perf.main([])
        assert exc.value.code != 0
        # the existing file is untouched — refusal happens before running
        with open("BENCH.json") as fh:
            assert fh.read() == "precious baseline\n"
        assert "--force" in capsys.readouterr().err

    def test_force_overwrites(self, fast_perf):
        with open("BENCH.json", "w") as fh:
            fh.write("old\n")
        assert perf.main(["--force"]) == 0
        with open("BENCH.json") as fh:
            assert json.load(fh)["schema"] == 1

    def test_explicit_out_path(self, fast_perf):
        assert perf.main(["--out", "custom.json"]) == 0
        assert os.path.exists("custom.json")
        assert not os.path.exists("BENCH.json")

    def test_baseline_embedding_still_works(self, fast_perf):
        assert perf.main(["--out", "base.json", "--label", "base"]) == 0
        assert perf.main(["--out", "new.json", "--baseline", "base.json"]) == 0
        with open("new.json") as fh:
            doc = json.load(fh)
        assert doc["baseline"]["label"] == "base"
        assert doc["speedup"]["kernel_callbacks_per_sec"] == 1.0
