"""Tests for the bench harness utilities and paper workloads."""

import pytest

from repro.bench import (
    FIG2_ATTR_MODES,
    Series,
    fig2_attribute_cost,
    format_table,
    halo_exchange_time,
    latency_once,
    run_sweep,
)
from repro.bench.workloads import _fig2_attrs


class TestFig2Attrs:
    def test_blocking_always_set(self):
        for mode in FIG2_ATTR_MODES:
            assert _fig2_attrs(mode).blocking

    def test_mode_mapping(self):
        assert not _fig2_attrs("none").ordering
        assert _fig2_attrs("ordering").ordering
        assert _fig2_attrs("remote_complete").remote_completion
        assert _fig2_attrs("atomicity+lock").atomicity
        assert _fig2_attrs("atomicity+thread").atomicity
        both = _fig2_attrs("ordering+remote_complete")
        assert both.ordering and both.remote_completion

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown Figure-2"):
            _fig2_attrs("causal")


class TestFig2Workload:
    def test_deterministic(self):
        a = fig2_attribute_cost("none", 64, n_origins=3, puts_per_origin=10)
        b = fig2_attribute_cost("none", 64, n_origins=3, puts_per_origin=10)
        assert a == b

    def test_scales_with_put_count(self):
        t10 = fig2_attribute_cost("none", 64, n_origins=3, puts_per_origin=10)
        t20 = fig2_attribute_cost("none", 64, n_origins=3, puts_per_origin=20)
        assert 1.5 < t20 / t10 < 2.5

    def test_returns_positive_time(self):
        assert fig2_attribute_cost("ordering", 8, n_origins=2,
                                   puts_per_origin=5) > 0


class TestLatencyWorkload:
    @pytest.mark.parametrize("api", ["strawman", "mpi2_lock", "mpi2_fence",
                                     "send_recv"])
    def test_all_apis_run(self, api):
        assert latency_once(api, size=8) > 0

    def test_unknown_api_rejected(self):
        with pytest.raises(ValueError, match="unknown api"):
            latency_once("smoke-signals")


class TestHaloWorkload:
    @pytest.mark.parametrize("mode", ["fence", "pscw", "lock", "strawman"])
    def test_all_modes_run(self, mode):
        assert halo_exchange_time(mode, n_ranks=4, iterations=2) > 0

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown sync mode"):
            halo_exchange_time("vibes", n_ranks=2, iterations=1)


class TestHarness:
    def test_run_sweep_shapes(self):
        def fn(size, factor):
            return size * factor

        out = run_sweep(fn, [1, 2, 3], {"x2": {"factor": 2},
                                        "x3": {"factor": 3}})
        assert out["x2"].values == [2, 4, 6]
        assert out["x3"].values == [3, 6, 9]

    def test_run_sweep_custom_x_key(self):
        def fn(n, base):
            return base + n

        out = run_sweep(fn, [10, 20], {"s": {"base": 1}}, x_key="n")
        assert out["s"].values == [11, 21]

    def test_format_table_contains_all_values(self):
        series = {
            "a": Series("a", [1.0, 2.0]),
            "b": Series("b", [3.0, 4.0]),
        }
        text = format_table("T", "x", [10, 20], series, unit="ms", scale=0.5)
        assert "T" in text
        assert "0.500" in text and "2.000" in text
        assert "(values in ms)" in text
        assert text.count("\n") >= 5

    def test_format_table_row_per_x(self):
        series = {"only": Series("only", [7.0, 8.0, 9.0])}
        text = format_table("t", "n", [1, 2, 3], series)
        rows = [l for l in text.splitlines() if l.strip().startswith(("1", "2", "3"))]
        assert len(rows) == 3
