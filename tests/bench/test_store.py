"""The open-loop sharded-store serving scenario."""

import pytest

from repro.bench.store import (
    OP_CLASSES,
    STORE_FABRICS,
    fabric_network,
    format_store_table,
    run_store_report,
    sharded_store_run,
)


def small_run(**kw):
    kw.setdefault("n_nodes", 2)
    kw.setdefault("ranks_per_node", 2)
    kw.setdefault("ops_per_rank", 25)
    kw.setdefault("n_keys", 64)
    return sharded_store_run(**kw)


class TestShardedStoreRun:
    def test_counts_and_identities(self):
        doc = small_run(seed=3)
        assert doc["ops"] == 100
        assert sum(doc["per_class"].values()) == doc["ops"]
        assert doc["local_ops"] + doc["remote_ops"] == doc["ops"]
        # every key-local request moved by load/store
        assert doc["shm_ops"] == doc["local_ops"]
        assert doc["local_ops"] > 0
        assert sum(c["count"] for c in doc["classes"].values()) == doc["ops"]
        for cls in OP_CLASSES:
            c = doc["classes"][cls]
            assert c["count"] == doc["per_class"][cls]
            if c["count"]:
                assert 0.0 < c["p50"] <= c["p99"] <= c["max"] or c["max"] == 0.0

    def test_full_scale_meets_op_floor(self):
        """The acceptance floor: at least 10x hotspot_incast's 210 ops."""
        doc = sharded_store_run(fabric="flat", seed=0)
        assert doc["ops"] == 2400
        assert doc["ops"] >= 2100
        assert doc["n_ranks"] == 16

    def test_deterministic_across_reruns(self):
        a = small_run(seed=11)
        b = small_run(seed=11)
        assert a == b

    def test_seed_changes_traffic(self):
        a = small_run(seed=1)
        b = small_run(seed=2)
        assert a["per_class"] != b["per_class"] or a["classes"] != b["classes"]

    def test_fabrics_resolve(self):
        for fabric in STORE_FABRICS:
            assert fabric_network(fabric).name
        with pytest.raises(ValueError):
            fabric_network("warp-drive")

    def test_routed_fabric_runs(self):
        doc = small_run(fabric="torus", seed=0)
        assert doc["ops"] == 100
        assert doc["shm_ops"] == doc["local_ops"]

    def test_zipf_skews_toward_hot_keys(self):
        """With s=1.2 over 64 keys, the head of the keyspace must absorb
        visibly more traffic than a uniform draw would give it."""
        from repro.bench.store import _zipf_cdf

        cdf = _zipf_cdf(64, 1.2)
        head_mass = cdf[7] / cdf[-1]     # first 8 of 64 keys
        assert head_mass > 0.5


class TestStoreReport:
    def test_report_rows_and_table(self):
        doc = run_store_report(fabrics=("flat",), seeds=(0, 1),
                               ops_per_rank=10, n_keys=32)
        assert len(doc["rows"]) == 2
        table = format_store_table(doc)
        lines = table.splitlines()
        assert "fabric" in lines[0] and "p99_us" in lines[0]
        # one row per (run, op class)
        assert len(lines) == 2 + 2 * len(OP_CLASSES)

    def test_report_cli_quick(self, capsys):
        from repro.obs.report import main

        assert main(["--store", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "sharded store" in out
        assert "key-local by load/store" in out
