"""Tier-1 seeded conformance sweep (ISSUE 5 acceptance).

25 generated programs, each executed on three representative fabrics
with two world seeds, must produce zero consistency violations.  The
companion test proves the oracle is not vacuous: running the same
pipeline with the engine's ordering sequence-flush deliberately
disabled must surface a violation.
"""

import pytest

from repro.check import check_program, generate_program, run_program

SWEEP_FABRICS = ("ordered", "unordered", "torus")
SWEEP_SEEDS = (0, 7)


@pytest.mark.parametrize("program_seed", range(25))
def test_conformance_sweep(program_seed):
    program = generate_program(program_seed)
    for fabric in SWEEP_FABRICS:
        for world_seed in SWEEP_SEEDS:
            result = run_program(program, fabric, world_seed)
            report = check_program(result)
            assert report.ok, (
                f"program seed {program_seed} on {fabric} "
                f"(world seed {world_seed}): "
                f"{[str(v) for v in report.violations]}")


def test_weakened_ordering_is_caught():
    """Dropping the ordering barrier must NOT go unnoticed.

    The jittery unordered fabric physically reorders back-to-back puts,
    so a program whose later put relies on the `ordering` attribute
    observes a stale final value once the engine stops gating on the
    sequence barrier.  A handful of seeds is scanned because physical
    overtaking depends on the sampled jitter (cf. the location-
    consistency integration test, which does the same)."""
    caught = []
    for seed in range(25):
        program = generate_program(seed)
        result = run_program(program, "unordered", seed,
                             mutations=("drop_order_barrier",))
        report = check_program(result)
        if not report.ok:
            caught.append((seed, [v.check for v in report.violations]))
    assert caught, "drop_order_barrier mutation was never detected"


def test_mutation_does_not_affect_unmutated_runs():
    """The test-only hook defaults to inert: same program, no mutation,
    stays clean on the exact seeds the mutated sweep flags."""
    for seed in (0, 13, 20, 23):
        program = generate_program(seed)
        report = check_program(run_program(program, "unordered", seed))
        assert report.ok, [str(v) for v in report.violations]


def test_strict_programs_run_stronger_checkers():
    """Strict programs must at least attempt causal/sequential checks
    (skipping the capped sequential search is allowed, but logged)."""
    strict_seeds = [s for s in range(40)
                    if generate_program(s).strict][:3]
    assert strict_seeds, "no strict program in the first 40 seeds"
    for seed in strict_seeds:
        program = generate_program(seed)
        result = run_program(program, "ordered", seed)
        report = check_program(result)
        assert report.ok
        assert "causal" in report.checks_run
        assert ("sequential" in report.checks_run
                or any("sequential" in note for note in report.skipped))


def test_chaos_runs_stay_conformant():
    """Lossy transport (drop/dup/delay) must not break the guarantees
    the attributes promise — the reliable transport hides the loss."""
    for seed in (0, 1, 2, 3, 4):
        program = generate_program(seed)
        result = run_program(program, "ordered", seed, chaos=0.03)
        report = check_program(result)
        assert report.ok, [str(v) for v in report.violations]
