"""Shrinker + artifact tests: the planted ordering bug must minimize
to a tiny reproducer whose JSON artifact replays to the same violation."""

import json

import pytest

from repro.check import (
    ProgOp,
    RmaProgram,
    VarSpec,
    check_program,
    generate_program,
    load_artifact,
    replay_artifact,
    run_program,
    shrink,
)
from repro.check.shrink import ARTIFACT_VERSION, save_artifact

MUTATION = ("drop_order_barrier",)


def _litmus():
    """Two back-to-back puts where only `ordering` sequences the second
    — the smallest program the planted bug can break."""
    v = VarSpec(vid=0, vtype="data", owner=1)
    return RmaProgram(
        n_ranks=2, vars=(v,),
        ops=(ProgOp(rank=0, kind="put", var=0, value=1),
             ProgOp(rank=0, kind="put", var=0, value=2,
                    attrs=("ordering",))),
        label="litmus")


def _failing_seed(program_factory, fabric="unordered", seeds=range(25)):
    for seed in seeds:
        program = program_factory(seed)
        result = run_program(program, fabric, seed, mutations=MUTATION)
        if not check_program(result).ok:
            return program, seed
    pytest.fail("planted bug never reproduced in the seed scan")


class TestShrink:
    def test_planted_bug_shrinks_to_small_reproducer(self):
        program, seed = _failing_seed(generate_program)
        assert len(program.ops) > 4
        res = shrink(program, "unordered", seed, mutations=MUTATION)
        assert res.shrunk_ops <= 4
        assert res.original_ops == len(program.ops)
        assert res.report.violations
        # The only guarantee the mutation can break is the `ordering`
        # attribute's sequence gating, so it must appear in the core.
        assert any(op.has("ordering") for op in res.program.ops)

    def test_litmus_shrinks_to_itself(self):
        program = _litmus()
        _, seed = _failing_seed(lambda _s: program)
        res = shrink(program, "unordered", seed, mutations=MUTATION)
        assert res.shrunk_ops == 2

    def test_shrink_rejects_passing_program(self):
        program = _litmus()
        with pytest.raises(ValueError, match="does not fail"):
            # No mutation: the program conforms, nothing to shrink.
            shrink(program, "ordered", 0)


class TestArtifacts:
    def test_artifact_replays_to_same_violation(self, tmp_path):
        program, seed = _failing_seed(generate_program)
        res = shrink(program, "unordered", seed, mutations=MUTATION)
        path = tmp_path / "reproducer.json"
        save_artifact(str(path), res.program, res.report,
                      mutations=MUTATION)

        doc = load_artifact(str(path))
        assert doc["version"] == ARTIFACT_VERSION
        config = doc["config"]
        assert config["mutations"] == list(MUTATION)

        replayed = check_program(run_program(
            RmaProgram.from_dict(doc["program"]), config["fabric"],
            config["seed"], mutations=tuple(config["mutations"])))
        assert not replayed.ok
        assert (sorted(v.check for v in replayed.violations)
                == sorted(v.check for v in res.report.violations))

        # And the one-call replay path agrees.
        assert not replay_artifact(str(path)).ok

    def test_load_artifact_rejects_bad_version(self, tmp_path):
        program = _litmus()
        report = check_program(run_program(program, "ordered", 0))
        path = tmp_path / "art.json"
        save_artifact(str(path), program, report)
        doc = json.loads(path.read_text())
        doc["version"] = 999
        path.write_text(json.dumps(doc))
        with pytest.raises(ValueError, match="version"):
            load_artifact(str(path))
