"""The durable_kv workload, its oracle, and the artifact pipeline.

The contract under test: an acknowledged write is never lost (rf=2),
the oracle is exact per key (single-writer partitioning), planted
bugs are caught (``skip_backup`` acks after the primary alone), and a
violation survives the save → load → replay round trip so a failing
seed from CI is debuggable offline.
"""

import json

import pytest

from repro.check.durability import (
    KvCase,
    KvOp,
    check_kv,
    generate_case,
    load_kv_artifact,
    replay_kv_artifact,
    run_kv,
    save_kv_artifact,
    shrink_kv,
)


class TestGenerateCase:
    def test_deterministic_in_the_seed(self):
        a_case, a_ops = generate_case(42)
        b_case, b_ops = generate_case(42)
        assert a_case == b_case
        assert a_ops == b_ops

    def test_different_seeds_differ(self):
        a_case, a_ops = generate_case(0)
        b_case, b_ops = generate_case(1)
        assert (a_case, a_ops) != (b_case, b_ops)

    def test_single_writer_partitioning(self):
        """Client c only writes keys with k % n_ranks == c — the
        property that keeps the oracle exact."""
        case, ops = generate_case(3)
        for op in ops:
            if op.kind != "get":
                assert op.key % case.n_ranks == op.client

    def test_scenario_fields_are_plausible(self):
        for seed in range(8):
            case, ops = generate_case(seed)
            assert 0 <= case.victim < case.n_ranks
            assert case.kill_at > 0
            if case.restart_at is not None:
                assert case.restart_at > case.kill_at
            assert len(ops) == case.n_ranks * 25


class TestCleanRunsAreDurable:
    @pytest.mark.parametrize("seed", [0, 7])
    def test_rf2_kill_loses_no_acked_write(self, seed):
        case, ops = generate_case(seed, rf=2)
        result = run_kv(case, ops)
        assert result.deadlock is None
        assert check_kv(result) == [], \
            "rf=2 must survive a single failure without losing acks"

    def test_runs_are_bit_deterministic(self):
        case, ops = generate_case(7, rf=2)
        a = run_kv(case, ops)
        b = run_kv(case, ops)
        assert a.finals == b.finals
        assert a.key_log == b.key_log
        assert a.stats == b.stats


class TestPlantedBugIsCaught:
    """The oracle's power check: a deliberately weakened write path
    (ack after the primary alone) must produce violations."""

    def _violating_seed(self):
        # the bug only bites when the victim was a primary with
        # in-flight acked writes; scan a few seeds for one that trips
        for seed in range(12):
            case, ops = generate_case(seed, rf=2)
            result = run_kv(case, ops, mutations=("skip_backup",))
            violations = check_kv(result)
            if violations:
                return case, ops, violations
        pytest.fail("skip_backup never produced a violation in 12 seeds")

    def test_skip_backup_violates_durability(self):
        _case, _ops, violations = self._violating_seed()
        assert any("not admissible" in v for v in violations)

    def test_shrink_keeps_the_violation(self):
        case, ops, _ = self._violating_seed()
        small, evidence, execs = shrink_kv(
            case, ops, mutations=("skip_backup",), max_executions=40)
        assert evidence, "shrinking lost the violation"
        assert len(small) <= len(ops)
        assert execs <= 40
        # the reduced list still violates when re-run from scratch
        assert check_kv(run_kv(case, small, ("skip_backup",)))


class TestArtifacts:
    def test_round_trip(self, tmp_path):
        case, ops = generate_case(5)
        path = str(tmp_path / "kv.json")
        save_kv_artifact(path, case, ops, ["key 1: boom"],
                         mutations=("skip_backup",))
        got_case, got_ops, got_mut = load_kv_artifact(path)
        assert got_case == case
        assert got_ops == ops
        assert got_mut == ("skip_backup",)

    def test_artifact_is_plain_reviewable_json(self, tmp_path):
        case, ops = generate_case(5)
        path = str(tmp_path / "kv.json")
        save_kv_artifact(path, case, ops, [])
        with open(path) as fh:
            doc = json.load(fh)
        assert doc["kind"] == "durable_kv"
        assert doc["version"] == 1
        assert doc["case"]["seed"] == 5

    def test_wrong_kind_is_rejected(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"kind": "rma_conformance",
                                    "version": 1}))
        with pytest.raises(ValueError, match="durable_kv"):
            load_kv_artifact(str(path))

    def test_replay_reproduces_the_verdict(self, tmp_path):
        """The debuggability contract: an artifact saved from a
        violating run yields the same verdict when replayed."""
        for seed in range(12):
            case, ops = generate_case(seed, rf=2)
            violations = check_kv(run_kv(case, ops,
                                         mutations=("skip_backup",)))
            if violations:
                break
        else:
            pytest.fail("no violating seed found")
        path = str(tmp_path / "repro.json")
        save_kv_artifact(path, case, ops, violations,
                         mutations=("skip_backup",))
        fresh = replay_kv_artifact(path)
        assert fresh == violations

    def test_clean_artifact_replays_clean(self, tmp_path):
        case, ops = generate_case(0, rf=2)
        path = str(tmp_path / "clean.json")
        save_kv_artifact(path, case, ops, [])
        assert replay_kv_artifact(path) == []


class TestOracleUnit:
    """check_kv in isolation on hand-built evidence."""

    def test_lost_acked_put_is_flagged(self):
        from repro.check.durability import KvResult
        op = KvOp(client=0, kind="put", key=0, value=5.0, think=1.0)
        result = KvResult(
            case=KvCase(seed=0, victim=3, kill_at=1000.0),
            key_log={0: [(op, True)]},
            finals={0: 0.0},      # the acked 5.0 vanished
            survivors=[0, 1, 2],
        )
        violations = check_kv(result)
        assert len(violations) == 1
        assert "key 0" in violations[0]

    def test_unacked_write_may_or_may_not_apply(self):
        from repro.check.durability import KvResult
        op = KvOp(client=0, kind="put", key=0, value=5.0, think=1.0)
        for final in (0.0, 5.0):
            result = KvResult(
                case=KvCase(seed=0, victim=3, kill_at=1000.0),
                key_log={0: [(op, False)]},
                finals={0: final},
                survivors=[0, 1, 2],
            )
            assert check_kv(result) == [], final

    def test_acc_chain_is_summed(self):
        from repro.check.durability import KvResult
        ops = [KvOp(0, "acc", 0, 2.0, 1.0), KvOp(0, "acc", 0, 3.0, 1.0)]
        result = KvResult(
            case=KvCase(seed=0, victim=3, kill_at=1000.0),
            key_log={0: [(ops[0], True), (ops[1], True)]},
            finals={0: 5.0},
            survivors=[0, 1, 2],
        )
        assert check_kv(result) == []
        result.finals[0] = 2.0    # second acked acc lost
        assert check_kv(result)

    def test_deadlock_is_itself_a_violation(self):
        from repro.check.durability import KvResult
        result = KvResult(
            case=KvCase(seed=0, victim=3, kill_at=1000.0),
            key_log={}, finals={}, survivors=[0, 1, 2],
            deadlock="no runnable events",
        )
        violations = check_kv(result)
        assert violations and "deadlock" in violations[0]
