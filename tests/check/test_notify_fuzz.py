"""Conformance fuzzing of notified RMA (ISSUE 9).

The generator's notify clause pairs a notify-carrying put with an
owner-side ``wait_notify`` + ``load``; the oracle then demands the
load see the notified write (an ``observe`` edge in the location
pomset) and every notified put deliver to the board exactly once —
chaos, duplicates and retransmissions included.  The planted
``notify_before_apply`` mutation (deliver at first-fragment arrival
instead of after apply) proves the oracle has teeth.
"""

import pytest

from repro.check import check_program, generate_program, run_program
from repro.check.shrink import replay_artifact, save_artifact, shrink


class TestGeneratorInvariants:
    def test_notify_off_is_byte_identical(self):
        """The default grammar must not move: old seeds keep their
        programs so artifact replays and cross-PR comparisons hold."""
        for seed in range(10):
            assert (generate_program(seed).to_json()
                    == generate_program(seed, notify=False).to_json())

    def test_pairs_and_unique_matches(self):
        for seed in range(15):
            p = generate_program(seed, notify=True)
            puts = [op for op in p.ops if op.kind == "put" and op.notify]
            waits = [op for op in p.ops if op.kind == "wait_notify"]
            assert len(puts) == len(waits)
            matches = [op.notify for op in puts]
            assert len(set(matches)) == len(matches)
            for w in waits:
                # the waiter is the variable's owner
                assert w.rank == p.var(w.var).owner

    def test_waiters_and_notifiers_disjoint_per_epoch(self):
        """The no-deadlock construction: within an epoch no rank both
        waits and notifies."""
        for seed in range(15):
            p = generate_program(seed, notify=True)
            epochs = p.epochs()
            by_epoch = {}
            for i, op in enumerate(p.ops):
                if op.kind == "put" and op.notify:
                    by_epoch.setdefault(epochs[i], ([], []))[0].append(
                        op.rank)
                if op.kind == "wait_notify":
                    by_epoch.setdefault(epochs[i], ([], []))[1].append(
                        op.rank)
            for notifiers, waiters in by_epoch.values():
                assert not set(notifiers) & set(waiters)

    def test_serialization_roundtrip(self):
        p = generate_program(0, notify=True)
        from repro.check.program import RmaProgram

        q = RmaProgram.from_json(p.to_json())
        assert q == p


class TestCleanSweep:
    @pytest.mark.parametrize("seed", range(8))
    def test_fault_free(self, seed):
        p = generate_program(seed, notify=True)
        for fabric in ("ordered", "unordered"):
            report = check_program(run_program(p, fabric, seed))
            assert report.ok, [str(v) for v in report.violations]

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_exactly_once_under_chaos(self, seed):
        p = generate_program(seed, notify=True)
        result = run_program(p, "unordered", seed, chaos=0.05)
        report = check_program(result)
        assert report.ok, [str(v) for v in report.violations]
        if any(op.notify and op.kind == "put" for op in p.ops):
            assert "notify-exactly-once" in report.checks_run


class TestPower:
    def test_notify_before_apply_is_caught(self):
        """The planted mutation delivers the notification at packet
        arrival; some seed/fabric must expose the stale read."""
        caught = False
        for seed in range(10):
            p = generate_program(seed, notify=True)
            if not any(op.kind == "wait_notify" for op in p.ops):
                continue
            for fabric in ("torus", "unordered"):
                result = run_program(p, fabric, seed,
                                     mutations=("notify_before_apply",))
                if not check_program(result).ok:
                    caught = True
                    break
            if caught:
                break
        assert caught, "planted notify_before_apply survived the sweep"

    def test_mutation_shrinks_to_minimal_reproducer(self, tmp_path):
        seed, fabric = 0, "torus"
        p = generate_program(seed, notify=True)
        res = shrink(p, fabric, seed, mutations=("notify_before_apply",))
        assert res.shrunk_ops < res.original_ops
        kinds = {op.kind for op in res.program.ops}
        assert "wait_notify" in kinds
        assert any(op.notify for op in res.program.ops
                   if op.kind == "put")
        path = str(tmp_path / "notify-fail.json")
        save_artifact(path, res.program, res.report,
                      mutations=("notify_before_apply",),
                      extra={"notify": True})
        replayed = replay_artifact(path)
        assert not replayed.ok
