"""Conformance fuzzing of the shared-memory window fast path (ISSUE 8).

Shared mode runs every generated program on a paired machine (two
ranks per node) with the shared-window flavor forced on, so co-located
partners reach each other's regions by load/store.  Unlike the op-train
path, the shared path is *not* timing-neutral — a load/store completes
in CPU time where the remote path pays the NIC — so the differential
holds the machine fixed (``colocate=True`` both arms) and compares the
timing-independent observables: the consistency oracle's verdict and
the counter-variable finals (pure commutative sums).  The
``shm_skip_fence`` mutation proves the sweep is not vacuous: a shared
access that skips the in-flight op-train flush reads the past, and the
generator's scratch "peek" checksums catch it.
"""

import pytest

from repro.check import generate_program, run_program
from repro.check.oracle import check_program


def _counter_finals(program, result):
    return {v.vid: result.finals[v.vid] for v in program.vars
            if v.vtype == "counter"}


@pytest.mark.parametrize("program_seed", range(25))
def test_shared_on_off_differential_sweep(program_seed):
    """25-seed sweep: on the same paired machine, shared-on and
    shared-off runs must both satisfy the consistency oracle, and the
    order-independent finals (counters) must be bit-identical."""
    program = generate_program(program_seed)
    for fabric in ("ordered", "portals"):
        arms = {}
        for shared in (False, True):
            result = run_program(program, fabric, seed=program_seed,
                                 colocate=True, shared=shared)
            report = check_program(result)
            assert report.ok, (
                f"seed {program_seed} on {fabric} shared={shared}: "
                f"{report.violations}")
            arms[shared] = (program, result)
        off, on = arms[False][1], arms[True][1]
        assert (_counter_finals(program, on)
                == _counter_finals(program, off))
        # the flavor must stay off when not requested
        assert off.stats["shm_ops"] == 0


def test_generated_programs_reach_the_shared_path():
    """The shared-window clause must actually drive the fast path:
    across the sweep's seeds, shared-mode runs take a healthy number
    of load/store shortcuts (not a degenerate boundary where the
    flavor never engages)."""
    engaged = 0
    for seed in range(25):
        program = generate_program(seed)
        result = run_program(program, "ordered", seed=seed, shared=True)
        engaged += result.stats["shm_ops"]
    assert engaged > 50


def test_generator_emits_shared_clause():
    """The grammar's shared clause shows up: scratch peeks paired with
    partner-directed noise bursts appear across a modest seed range."""
    peeks = 0
    for seed in range(25):
        program = generate_program(seed)
        for op in program.ops:
            if op.kind == "peek":
                peeks += 1
                partner = op.rank ^ 1
                if partner >= program.n_ranks:
                    partner = op.rank - 1
                assert op.target == partner
                assert op.nbytes > 16
    assert peeks >= 5


def test_shm_skip_fence_mutation_is_caught():
    """Planted shared-path bug: skipping the in-flight train flush
    before a direct load/store must surface in the differential
    observables on at least one sweep seed (a scratch peek reads
    bytes an analytically-arrived train element already wrote)."""
    caught = []
    for seed in range(15):
        program = generate_program(seed)
        clean = run_program(program, "portals", seed=seed, trace=False,
                            shared=True)
        if clean.stats["shm_ops"] == 0 or clean.stats["train_ops"] == 0:
            continue
        mutated = run_program(program, "portals", seed=seed, trace=False,
                              shared=True, mutations=("shm_skip_fence",))
        if (mutated.finals, mutated.returns) != (clean.finals,
                                                 clean.returns):
            caught.append(seed)
    assert caught, "shm_skip_fence mutation was never detected"


def test_skip_fence_mutation_inert_without_shared():
    """The mutation hooks the shared path only: with the flavor off
    (even on the paired machine) the mutated run must match the clean
    run exactly."""
    program = generate_program(5)
    clean = run_program(program, "portals", seed=5, trace=False,
                        colocate=True)
    mutated = run_program(program, "portals", seed=5, trace=False,
                          colocate=True, mutations=("shm_skip_fence",))
    assert (mutated.sim_time, mutated.finals, mutated.returns) == (
        clean.sim_time, clean.finals, clean.returns)


def test_odd_rank_count_pads_the_paired_machine():
    """Machines are regular, so an odd rank count gets one padding
    rank; the program must still run and check clean."""
    program = generate_program(2, n_ranks=3)
    result = run_program(program, "ordered", seed=2, shared=True)
    assert check_program(result).ok


def test_cli_shared_flag():
    from repro.check.cli import main

    assert main(["--seeds", "2", "--fabric", "ordered", "--shared",
                 "-q"]) == 0
