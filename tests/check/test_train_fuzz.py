"""Conformance fuzzing of the op-train fast path (ISSUE 6).

The generator's op-train clause emits long attribute-uniform put runs;
untraced runs (``trace=False``) let the engine's vectorized train path
engage.  The differential oracle runs every program twice — train path
forced on, then forced off — and requires bit-identical final memory,
fetch returns, and simulated end time.  The ``train_mistime`` mutation
proves the oracle is not vacuous: a planted one-element timing bug in
the batch path must be caught.
"""

import pytest

from repro.check import generate_program, run_program
from repro.rma.engine import RmaEngine


def _run(program, fabric, seed, train, **kw):
    prev = RmaEngine.train_enabled
    RmaEngine.train_enabled = train
    try:
        return run_program(program, fabric, seed, trace=False, **kw)
    finally:
        RmaEngine.train_enabled = prev


def _observables(result):
    return (result.sim_time, result.finals, result.returns)


@pytest.mark.parametrize("program_seed", range(25))
def test_train_on_off_differential_sweep(program_seed):
    """25-seed sweep: the train path must not move a single simulated
    observable on the flat ordered fabrics where it engages."""
    program = generate_program(program_seed)
    for fabric in ("ordered", "portals"):
        on = _run(program, fabric, seed=program_seed, train=True)
        off = _run(program, fabric, seed=program_seed, train=False)
        assert _observables(on) == _observables(off), (
            f"program seed {program_seed} on {fabric}: train path "
            f"changed simulated results")
        assert off.stats["train_ops"] == 0


def test_generated_programs_reach_the_train_path():
    """The op-train clause must actually drive the fast path: across
    the sweep's seeds, untraced runs issue a healthy number of train
    ops (not a degenerate boundary where the path never engages)."""
    engaged = 0
    for seed in range(25):
        program = generate_program(seed)
        result = _run(program, "portals", seed=seed, train=True)
        engaged += result.stats["train_ops"]
    assert engaged > 50


def test_train_path_self_disables_when_traced():
    """Traced runs (the consistency-oracle configuration) must never
    take the batch path — tracing is an eligibility gate."""
    program = generate_program(3)
    prev = RmaEngine.train_enabled
    RmaEngine.train_enabled = True
    try:
        result = run_program(program, "portals", seed=3)  # trace=True
    finally:
        RmaEngine.train_enabled = prev
    assert result.stats["train_ops"] == 0


def test_train_mistime_mutation_is_caught():
    """Planted batch-path bug: mis-timing one train element per
    destination must surface in the differential observables on at
    least one sweep seed (it shifts injections, arrivals and the
    closing flush round trip)."""
    caught = []
    for seed in range(10):
        program = generate_program(seed)
        clean = _run(program, "portals", seed=seed, train=True)
        if clean.stats["train_ops"] == 0:
            continue
        mutated = _run(program, "portals", seed=seed, train=True,
                       mutations=("train_mistime",))
        if _observables(mutated) != _observables(clean):
            caught.append(seed)
    assert caught, "train_mistime mutation was never detected"


def test_mistime_mutation_inert_without_train():
    """The mutation hooks the batch path only: with the train disabled
    the mutated run must match the clean per-op run exactly."""
    program = generate_program(0)
    clean = _run(program, "portals", seed=0, train=False)
    mutated = _run(program, "portals", seed=0, train=False,
                   mutations=("train_mistime",))
    assert _observables(mutated) == _observables(clean)
