"""RunConfig: the single versioned run-configuration dict (DESIGN
§16.4), and the v1-artifact back-compat path — including a regression
replay of a frozen PR 9-era artifact embedded below."""

import json

import pytest

from repro.check.config import CONFIG_VERSION, RunConfig
from repro.check.shrink import (
    ARTIFACT_VERSION,
    load_artifact,
    replay_artifact,
)

#: A verbatim PR 9-era (version 1) artifact: configuration scattered
#: over top-level keys, no "config" dict.  The program is the ordering
#: litmus — two back-to-back puts where only the `ordering` attribute
#: sequences the second — failing under the drop_order_barrier engine
#: mutation on an unordered fabric.  Frozen here so the back-compat
#: path is pinned against real old bytes, not freshly-serialized ones.
V1_ARTIFACT = {
    "chaos": 0.0,
    "fabric": "unordered",
    "mutations": ["drop_order_barrier"],
    "program": {
        "label": "litmus",
        "n_ranks": 2,
        "ops": [
            {"kind": "put", "rank": 0, "value": 1, "var": 0},
            {"attrs": ["ordering"], "kind": "put", "rank": 0,
             "value": 2, "var": 0},
        ],
        "region_size": 1024,
        "strict": False,
        "vars": [
            {"owner": 1, "user": -1, "vid": 0, "vtype": "data"},
        ],
    },
    "seed": 0,
    "shared": False,
    "version": 1,
    "violations": [
        {
            "check": "final-state",
            "message": "final value 1 not in admissible set [2] "
                       "(writes [(0, 1), (1, 2)])",
            "vid": 0,
        },
    ],
}


class TestRunConfig:
    def test_dict_round_trip(self):
        config = RunConfig(fabric="torus", seed=7, chaos=0.02,
                           mutations=("drop_order_barrier",), shared=True,
                           notify=True, ir_passes=("coalesce_flushes",))
        doc = config.to_dict()
        assert doc["version"] == CONFIG_VERSION
        assert RunConfig.from_dict(doc) == config

    def test_defaults_fill_missing_keys(self):
        config = RunConfig.from_dict({"fabric": "flat", "seed": 3})
        assert config == RunConfig(fabric="flat", seed=3)

    def test_rejects_unknown_version(self):
        with pytest.raises(ValueError, match="version"):
            RunConfig.from_dict({"version": 99, "fabric": "flat", "seed": 0})

    def test_from_artifact_reads_v1_top_level_keys(self):
        config = RunConfig.from_artifact(V1_ARTIFACT)
        assert config == RunConfig(fabric="unordered", seed=0,
                                   mutations=("drop_order_barrier",))

    def test_from_artifact_prefers_v2_config_dict(self):
        inner = RunConfig(fabric="torus", seed=5, ir_passes=("relax_attributes",))
        doc = {"version": ARTIFACT_VERSION, "config": inner.to_dict(),
               "fabric": "WRONG", "seed": -1}
        assert RunConfig.from_artifact(doc) == inner

    def test_describe_mentions_every_toggle(self):
        banner = RunConfig(
            fabric="flat", seed=1, chaos=0.05, mutations=("m",),
            shared=True, notify=True, ir_passes=("aggregate_puts",),
        ).describe()
        for needle in ("fabric=flat", "seed=1", "chaos=0.05", "shared",
                       "notify", "mutations=['m']",
                       "ir_passes=['aggregate_puts']"):
            assert needle in banner

    def test_with_override(self):
        base = RunConfig(fabric="flat", seed=0)
        assert base.with_(seed=9).seed == 9
        assert base.seed == 0  # frozen: with_ copies


class TestV1ArtifactRegression:
    """A PR 9-era artifact must load and replay to the recorded
    violation, byte-for-byte the program it froze."""

    @pytest.fixture()
    def v1_path(self, tmp_path):
        path = tmp_path / "pr9_artifact.json"
        path.write_text(json.dumps(V1_ARTIFACT, indent=2, sort_keys=True))
        return str(path)

    def test_load_normalizes_config(self, v1_path):
        doc = load_artifact(v1_path)
        config = doc["config"]
        assert config["version"] == CONFIG_VERSION
        assert config["fabric"] == "unordered"
        assert config["mutations"] == ["drop_order_barrier"]
        assert config["ir_passes"] == []

    def test_replay_reproduces_recorded_violation(self, v1_path):
        report = replay_artifact(v1_path)
        assert not report.ok
        assert ([v.check for v in report.violations]
                == [v["check"] for v in V1_ARTIFACT["violations"]])
