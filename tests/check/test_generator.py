"""Generator determinism, IR validity, and serialization round-trips."""

import pytest

from repro.check import ProgOp, RmaProgram, VarSpec, generate_program
from repro.check.program import OP_KINDS, SLOT_BYTES


class TestDeterminism:
    def test_same_seed_same_program(self):
        for seed in range(20):
            a = generate_program(seed)
            b = generate_program(seed)
            assert a == b

    def test_different_seeds_differ(self):
        programs = {generate_program(seed).to_json() for seed in range(20)}
        assert len(programs) > 15  # a collision or two would be fine

    def test_overrides_respected(self):
        p = generate_program(3, n_ranks=4, strict=True)
        assert p.n_ranks == 4
        assert p.strict


class TestValidity:
    @pytest.mark.parametrize("seed", range(25))
    def test_generated_programs_validate(self, seed):
        p = generate_program(seed)
        p.validate()
        assert 2 <= p.n_ranks <= 8
        assert p.ops
        for op in p.ops:
            assert op.kind in OP_KINDS
            if op.kind == "sync":
                assert op.rank == -1
            else:
                assert 0 <= op.rank < p.n_ranks

    @pytest.mark.parametrize("seed", range(25))
    def test_one_writer_per_data_var_per_epoch(self, seed):
        p = generate_program(seed)
        epochs = p.epochs()
        writers = {}  # (vid, epoch) -> rank
        for i, op in enumerate(p.ops):
            if op.kind in ("put", "store") and p.var(op.var).vtype == "data":
                key = (op.var, epochs[i])
                assert writers.setdefault(key, op.rank) == op.rank
            if op.kind == "noise":
                # Noise stays in the untraced scratch half.
                assert op.nbytes > 16
                assert op.disp >= p.region_size // 2
                assert op.disp + op.nbytes <= p.region_size

    @pytest.mark.parametrize("seed", range(25))
    def test_fill_bytes_program_unique(self, seed):
        p = generate_program(seed)
        fills = [op.value for op in p.ops
                 if op.kind in ("put", "store")
                 and p.var(op.var).vtype == "data"]
        assert len(fills) == len(set(fills))
        assert all(1 <= f <= 255 for f in fills)

    @pytest.mark.parametrize("seed", range(25))
    def test_reads_are_blocking(self, seed):
        p = generate_program(seed)
        for op in p.ops:
            if op.kind == "get":
                assert op.has("blocking")

    def test_validate_rejects_traced_noise(self):
        v = VarSpec(vid=0, vtype="data", owner=0)
        bad = RmaProgram(
            n_ranks=2, vars=(v,),
            ops=(ProgOp(rank=1, kind="noise", target=0, nbytes=8,
                        disp=512),))
        with pytest.raises(ValueError):
            bad.validate()


class TestSerialization:
    @pytest.mark.parametrize("seed", range(25))
    def test_json_round_trip(self, seed):
        p = generate_program(seed)
        assert RmaProgram.from_json(p.to_json()) == p

    def test_epochs_and_per_rank_view(self):
        v = VarSpec(vid=0, vtype="data", owner=0)
        ops = (
            ProgOp(rank=1, kind="put", var=0, value=1),
            ProgOp(rank=-1, kind="sync"),
            ProgOp(rank=1, kind="get", var=0, attrs=("blocking",)),
        )
        p = RmaProgram(n_ranks=2, vars=(v,), ops=ops)
        assert p.epochs() == [0, 0, 1]
        # Every rank sees the sync op; only rank 1 sees the RMA ops.
        assert [op.kind for _, op in p.ops_for(0)] == ["sync"]
        assert [op.kind for _, op in p.ops_for(1)] == ["put", "sync", "get"]

    def test_var_disp_uses_slot_stride(self):
        v = VarSpec(vid=3, vtype="data", owner=0)
        assert v.disp == 3 * SLOT_BYTES
