"""CLI surface tests for ``python -m repro.check``."""

import json
import os

import pytest

from repro.check.cli import main


def test_clean_sweep_exits_zero(capsys):
    rc = main(["--seeds", "2", "--fabric", "ordered", "-q"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "violation" in out  # summary line
    assert "checked" in out


def test_seed_range_spec(capsys):
    rc = main(["--seeds", "3:5", "--fabric", "ordered,torus", "-q"])
    assert rc == 0
    out = capsys.readouterr().out
    # 2 seeds x 2 fabrics = 4 program-runs.
    assert "checked 4 program-runs" in out


def test_bad_specs_exit_two():
    with pytest.raises(SystemExit) as exc:
        main(["--seeds", "0:0"])
    assert exc.value.code == 2
    with pytest.raises(SystemExit) as exc:
        main(["--fabric", "nope"])
    assert exc.value.code == 2


def test_mutated_run_writes_replayable_artifact(tmp_path, capsys):
    rc = main([
        "--seeds", "25", "--fabric", "unordered",
        "--mutate", "drop_order_barrier", "--shrink",
        "--max-failures", "1", "--artifact-dir", str(tmp_path), "-q",
    ])
    assert rc == 1
    artifacts = [p for p in os.listdir(tmp_path) if p.endswith(".json")]
    assert artifacts
    doc = json.loads((tmp_path / artifacts[0]).read_text())
    assert doc["config"]["mutations"] == ["drop_order_barrier"]
    assert doc["violations"]
    # Shrunk reproducer stays tiny (acceptance: <= 4 ops).
    assert len(doc["program"]["ops"]) <= 4
    capsys.readouterr()

    rc = main(["--replay", str(tmp_path / artifacts[0])])
    assert rc == 1
    assert "reproduced" in capsys.readouterr().out


def test_replay_restores_shared_machine_config(tmp_path, capsys):
    """ISSUE 9 satellite: replaying a ``--shared`` artifact must
    restore the paired-machine + shared-window configuration from the
    artifact itself (no flags needed) and say so, instead of silently
    replaying on the default machine."""
    rc = main([
        "--seeds", "25", "--fabric", "unordered", "--shared",
        "--mutate", "drop_order_barrier",
        "--max-failures", "1", "--artifact-dir", str(tmp_path), "-q",
    ])
    assert rc == 1
    artifacts = [p for p in os.listdir(tmp_path) if p.endswith(".json")]
    assert artifacts
    doc = json.loads((tmp_path / artifacts[0]).read_text())
    assert doc["config"]["shared"] is True
    capsys.readouterr()

    # Flag-free replay: the recorded config is restored and announced.
    rc = main(["--replay", str(tmp_path / artifacts[0])])
    out = capsys.readouterr().out
    assert rc == 1
    assert "shared (paired machine" in out
    assert "reproduced" in out


def test_replay_notes_ignored_flags(tmp_path, capsys):
    """Passing --shared/--chaos/--mutate alongside --replay used to be
    silently ignored; now the CLI says the artifact's configuration
    wins."""
    rc = main([
        "--seeds", "25", "--fabric", "unordered",
        "--mutate", "drop_order_barrier",
        "--max-failures", "1", "--artifact-dir", str(tmp_path), "-q",
    ])
    assert rc == 1
    artifacts = [p for p in os.listdir(tmp_path) if p.endswith(".json")]
    capsys.readouterr()

    rc = main(["--replay", str(tmp_path / artifacts[0]), "--shared"])
    out = capsys.readouterr().out
    assert rc == 1
    assert "ignored during replay" in out


def test_notify_sweep_clean_and_mutation_caught(tmp_path, capsys):
    """The --notify mode: a clean sweep passes; the planted
    notify_before_apply mutation is caught and its artifact records
    the notify provenance."""
    assert main(["--notify", "--seeds", "3", "--fabric",
                 "ordered,unordered", "-q"]) == 0
    capsys.readouterr()

    rc = main([
        "--notify", "--seeds", "6", "--fabric", "torus",
        "--mutate", "notify_before_apply", "--shrink",
        "--max-failures", "1", "--artifact-dir", str(tmp_path), "-q",
    ])
    assert rc == 1
    artifacts = [p for p in os.listdir(tmp_path) if p.endswith(".json")]
    assert artifacts
    doc = json.loads((tmp_path / artifacts[0]).read_text())
    assert doc["config"]["notify"] is True
    kinds = {op["kind"] for op in doc["program"]["ops"]}
    assert "wait_notify" in kinds
