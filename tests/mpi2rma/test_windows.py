"""Tests for MPI-2 windows and the three synchronization methods."""

import numpy as np
import pytest

from repro.datatypes import BYTE, INT32
from repro.mpi2rma import Mpi2Error
from repro.runtime import World


class TestFence:
    def test_figure_1a_fence_exchange(self):
        """Paper Figure 1a: both ranks put+get inside a fence epoch."""

        def program(ctx):
            alloc = ctx.mem.space.alloc(64, fill=ctx.rank + 10)
            win = yield from ctx.mpi2.win_create(alloc)
            partner = 1 - ctx.rank
            src = ctx.mem.space.alloc(8, fill=ctx.rank + 1)
            dst = ctx.mem.space.alloc(8)
            yield from win.fence()
            yield from win.put(src, 0, 8, BYTE, partner, 0)
            yield from win.get(dst, 0, 8, BYTE, partner, 32)
            yield from win.fence()
            got_put = ctx.mem.load(alloc, 0, 8).tolist()
            got_get = ctx.mem.load(dst, 0, 8).tolist()
            yield from win.free()
            return (got_put, got_get)

        out = World(n_ranks=2).run(program)
        assert out[0] == ([2] * 8, [11] * 8)  # rank1 put 2s; got rank1's fill
        assert out[1] == ([1] * 8, [10] * 8)

    def test_put_before_any_fence_is_error(self):
        def program(ctx):
            alloc = ctx.mem.space.alloc(16)
            win = yield from ctx.mpi2.win_create(alloc)
            src = ctx.mem.space.alloc(8)
            yield from win.put(src, 0, 8, BYTE, 1 - ctx.rank, 0)

        with pytest.raises(Mpi2Error, match="outside an access epoch"):
            World(n_ranks=2).run(program)

    def test_fence_makes_remote_puts_visible(self):
        def program(ctx):
            alloc = ctx.mem.space.alloc(64)
            win = yield from ctx.mpi2.win_create(alloc)
            yield from win.fence()
            if ctx.rank == 1:
                src = ctx.mem.space.alloc(16, fill=9)
                yield from win.put(src, 0, 16, BYTE, 0, 0)
            yield from win.fence()
            result = ctx.mem.load(alloc, 0, 16).tolist()
            yield from win.free()
            return result

        out = World(n_ranks=3).run(program)
        assert out[0] == [9] * 16
        assert out[2] == [0] * 16


class TestOverlapErrors:
    """§II-A: overlapping Put/Get in one epoch is erroneous in MPI-2."""

    def test_overlapping_puts_error(self):
        def program(ctx):
            alloc = ctx.mem.space.alloc(64)
            win = yield from ctx.mpi2.win_create(alloc)
            yield from win.fence()
            if ctx.rank == 1:
                src = ctx.mem.space.alloc(16)
                yield from win.put(src, 0, 16, BYTE, 0, 0)
                yield from win.put(src, 0, 16, BYTE, 0, 8)  # overlaps
            yield from win.fence()

        with pytest.raises(Mpi2Error, match="overlapping RMA access"):
            World(n_ranks=2).run(program)

    def test_put_get_overlap_error(self):
        def program(ctx):
            alloc = ctx.mem.space.alloc(64)
            win = yield from ctx.mpi2.win_create(alloc)
            yield from win.fence()
            if ctx.rank == 1:
                src = ctx.mem.space.alloc(16)
                yield from win.put(src, 0, 16, BYTE, 0, 0)
                yield from win.get(src, 0, 8, BYTE, 0, 4)
            yield from win.fence()

        with pytest.raises(Mpi2Error, match="overlapping"):
            World(n_ranks=2).run(program)

    def test_same_op_accumulate_overlap_is_legal(self):
        def program(ctx):
            alloc = ctx.mem.space.alloc(64)
            win = yield from ctx.mpi2.win_create(alloc)
            yield from win.fence()
            if ctx.rank == 1:
                src = ctx.mem.space.alloc(8)
                ctx.mem.space.view(src, "int32")[:2] = [1, 1]
                yield from win.accumulate(src, 0, 2, INT32, 0, 0, op="sum")
                yield from win.accumulate(src, 0, 2, INT32, 0, 0, op="sum")
            yield from win.fence()
            result = ctx.mem.space.view(alloc, "int32")[:2].tolist()
            yield from win.free()
            return result

        assert World(n_ranks=2).run(program)[0] == [2, 2]

    def test_mixed_op_accumulate_overlap_is_error(self):
        def program(ctx):
            alloc = ctx.mem.space.alloc(64)
            win = yield from ctx.mpi2.win_create(alloc)
            yield from win.fence()
            if ctx.rank == 1:
                src = ctx.mem.space.alloc(8)
                yield from win.accumulate(src, 0, 2, INT32, 0, 0, op="sum")
                yield from win.accumulate(src, 0, 2, INT32, 0, 0, op="prod")
            yield from win.fence()

        with pytest.raises(Mpi2Error, match="overlapping"):
            World(n_ranks=2).run(program)

    def test_disjoint_puts_are_fine(self):
        def program(ctx):
            alloc = ctx.mem.space.alloc(64)
            win = yield from ctx.mpi2.win_create(alloc)
            yield from win.fence()
            if ctx.rank == 1:
                src = ctx.mem.space.alloc(16, fill=1)
                yield from win.put(src, 0, 8, BYTE, 0, 0)
                yield from win.put(src, 8, 8, BYTE, 0, 8)
            yield from win.fence()
            yield from win.free()
            return True

        assert all(World(n_ranks=2).run(program))

    def test_new_epoch_resets_tracking(self):
        def program(ctx):
            alloc = ctx.mem.space.alloc(64)
            win = yield from ctx.mpi2.win_create(alloc)
            yield from win.fence()
            if ctx.rank == 1:
                src = ctx.mem.space.alloc(8)
                yield from win.put(src, 0, 8, BYTE, 0, 0)
            yield from win.fence()
            if ctx.rank == 1:
                src = ctx.mem.space.alloc(8)
                yield from win.put(src, 0, 8, BYTE, 0, 0)  # same spot, new epoch
            yield from win.fence()
            yield from win.free()
            return True

        assert all(World(n_ranks=2).run(program))


class TestPscw:
    def test_figure_1b_post_start_complete_wait(self):
        """Paper Figure 1b: ranks 1,2 start toward 0; 0 posts to {1,2}."""

        def program(ctx):
            alloc = ctx.mem.space.alloc(64)
            win = yield from ctx.mpi2.win_create(alloc)
            if ctx.rank == 0:
                yield from win.post([1, 2])
                yield from win.wait()
                result = ctx.mem.load(alloc, 0, 16).tolist()
            else:
                yield from win.start([0])
                src = ctx.mem.space.alloc(8, fill=ctx.rank)
                yield from win.put(src, 0, 8, BYTE, 0, (ctx.rank - 1) * 8)
                yield from win.complete()
                result = None
            yield from win.free()
            return result

        out = World(n_ranks=3).run(program)
        assert out[0] == [1] * 8 + [2] * 8

    def test_put_to_rank_outside_start_group_is_error(self):
        def program(ctx):
            alloc = ctx.mem.space.alloc(16)
            win = yield from ctx.mpi2.win_create(alloc)
            if ctx.rank == 0:
                yield from win.post([1])
                yield from win.wait()
            elif ctx.rank == 1:
                yield from win.start([0])
                src = ctx.mem.space.alloc(8)
                yield from win.put(src, 0, 8, BYTE, 2, 0)  # 2 not in group
                yield from win.complete()

        with pytest.raises(Mpi2Error, match="not part of the current"):
            World(n_ranks=3).run(program)

    def test_complete_without_start_is_error(self):
        def program(ctx):
            alloc = ctx.mem.space.alloc(16)
            win = yield from ctx.mpi2.win_create(alloc)
            yield from win.complete()

        with pytest.raises(Mpi2Error, match="without a matching start"):
            World(n_ranks=2).run(program)

    def test_wait_without_post_is_error(self):
        def program(ctx):
            alloc = ctx.mem.space.alloc(16)
            win = yield from ctx.mpi2.win_create(alloc)
            yield from win.wait()

        with pytest.raises(Mpi2Error, match="without a matching post"):
            World(n_ranks=2).run(program)


class TestLockUnlock:
    def test_figure_1c_passive_target(self):
        """Paper Figure 1c: ranks 0 and 2 lock rank 1, put+get, unlock —
        rank 1 never calls anything."""

        def program(ctx):
            alloc = ctx.mem.space.alloc(64)
            if ctx.rank == 1:
                ctx.mem.store(alloc, 32, np.full(8, 55, dtype=np.uint8))
            win = yield from ctx.mpi2.win_create(alloc)
            result = None
            if ctx.rank in (0, 2):
                src = ctx.mem.space.alloc(8, fill=ctx.rank + 1)
                dst = ctx.mem.space.alloc(8)
                yield from win.lock(1, shared=True)
                yield from win.put(src, 0, 8, BYTE, 1, ctx.rank * 4)
                yield from win.get(dst, 0, 8, BYTE, 1, 32)
                yield from win.unlock(1)
                result = ctx.mem.load(dst, 0, 8).tolist()
            yield from win.free()
            return result

        out = World(n_ranks=3).run(program)
        assert out[0] == [55] * 8
        assert out[2] == [55] * 8

    def test_exclusive_locks_serialize_increments(self):
        """Read-modify-write under exclusive locks loses no update."""

        def program(ctx):
            alloc = ctx.mem.space.alloc(8)
            win = yield from ctx.mpi2.win_create(alloc)
            if ctx.rank != 0:
                buf = ctx.mem.space.alloc(8)
                for _ in range(5):
                    yield from win.lock(0, shared=False)
                    yield from win.get(buf, 0, 1, INT32, 0, 0)
                    yield from win.unlock(0)
                    v = ctx.mem.space.view(buf, "int32")
                    v[0] += 1
                    yield from win.lock(0, shared=False)
                    yield from win.put(buf, 0, 1, INT32, 0, 0)
                    yield from win.unlock(0)

            yield from win.fence()
            result = int(ctx.mem.space.view(alloc, "int32")[0]) if ctx.rank == 0 else None
            yield from win.free()
            return result

        # NOTE: get-then-put under *separate* locks is racy by design —
        # this test uses 2 ranks so increments do not interleave enough
        # to matter... instead use a single origin to check correctness.
        out = World(n_ranks=2).run(program)
        assert out[0] == 5

    def test_unlock_without_lock_is_error(self):
        def program(ctx):
            alloc = ctx.mem.space.alloc(8)
            win = yield from ctx.mpi2.win_create(alloc)
            yield from win.unlock(0)

        with pytest.raises(Mpi2Error, match="without a matching lock"):
            World(n_ranks=2).run(program)

    def test_lock_inside_fence_epoch_is_error(self):
        def program(ctx):
            alloc = ctx.mem.space.alloc(8)
            win = yield from ctx.mpi2.win_create(alloc)
            yield from win.fence()
            yield from win.lock(0)

        with pytest.raises(Mpi2Error, match="another access epoch"):
            World(n_ranks=2).run(program)

    def test_exclusive_lock_excludes_shared(self):
        """While rank 1 holds exclusive, rank 2's shared lock waits."""

        def program(ctx):
            alloc = ctx.mem.space.alloc(8)
            win = yield from ctx.mpi2.win_create(alloc)
            times = None
            if ctx.rank == 1:
                yield from win.lock(0, shared=False)
                yield ctx.sim.timeout(500.0)  # hold it a long time
                yield from win.unlock(0)
            elif ctx.rank == 2:
                yield ctx.sim.timeout(50.0)  # ask while 1 holds it
                t0 = ctx.sim.now
                yield from win.lock(0, shared=True)
                times = ctx.sim.now - t0
                yield from win.unlock(0)
            yield from win.fence()
            yield from win.free()
            return times

        out = World(n_ranks=3).run(program)
        assert out[2] > 400.0  # had to wait for the exclusive holder


class TestWindowLifecycle:
    def test_double_free_rejected(self):
        def program(ctx):
            alloc = ctx.mem.space.alloc(8)
            win = yield from ctx.mpi2.win_create(alloc)
            yield from win.free()
            yield from win.free()

        with pytest.raises(Mpi2Error, match="double free"):
            World(n_ranks=2).run(program)

    def test_access_after_free_rejected(self):
        def program(ctx):
            alloc = ctx.mem.space.alloc(8)
            win = yield from ctx.mpi2.win_create(alloc)
            yield from win.free()
            yield from win.fence()

        with pytest.raises(Mpi2Error, match="freed window"):
            World(n_ranks=2).run(program)

    def test_multiple_windows_coexist(self):
        def program(ctx):
            a1 = ctx.mem.space.alloc(16)
            a2 = ctx.mem.space.alloc(16)
            w1 = yield from ctx.mpi2.win_create(a1)
            w2 = yield from ctx.mpi2.win_create(a2)
            yield from w1.fence()
            yield from w2.fence()
            if ctx.rank == 1:
                src = ctx.mem.space.alloc(8, fill=1)
                yield from w1.put(src, 0, 8, BYTE, 0, 0)
                src2 = ctx.mem.space.alloc(8, fill=2)
                yield from w2.put(src2, 0, 8, BYTE, 0, 0)
            yield from w1.fence()
            yield from w2.fence()
            result = (ctx.mem.load(a1, 0, 8).tolist(),
                      ctx.mem.load(a2, 0, 8).tolist())
            yield from w1.free()
            yield from w2.free()
            return result

        out = World(n_ranks=2).run(program)
        assert out[0] == ([1] * 8, [2] * 8)
