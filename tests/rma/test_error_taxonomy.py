"""The structured RMA error taxonomy.

Every delivery failure classifies itself with ``kind`` (one of
:data:`repro.rma.target_mem.ERROR_KINDS`), carries its context in
``__str__``, and pickles faithfully — reproducer artifacts and
multi-process harnesses both depend on the round trip.
"""

import pickle

import pytest

from repro.datatypes import BYTE
from repro.faults import FaultPlan
from repro.mpi.constants import ERRORS_RETURN
from repro.network.config import generic_rdma
from repro.resil.errors import RankFailed, WindowRevoked
from repro.rma.target_mem import ERROR_KINDS, RmaError
from repro.runtime import World


class TestTaxonomy:
    def test_kinds_cover_the_failure_classes(self):
        for kind in ("usage", "retry_exhausted", "rank_failed",
                     "window_revoked", "link_partition"):
            assert kind in ERROR_KINDS

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown error kind"):
            RmaError("boom", kind="cosmic_ray")

    def test_default_is_plain_usage(self):
        err = RmaError("bad count")
        assert err.kind == "usage"
        assert str(err) == "bad count"  # no bracketed context

    def test_str_carries_structured_context(self):
        err = RmaError(
            "put failed", kind="retry_exhausted", op="put", src=0,
            target=3, path=(0, 3), retries=16, sim_time=1234.5,
        )
        text = str(err)
        assert "kind=retry_exhausted" in text
        assert "op=put" in text
        assert "path=0->3" in text
        assert "retries=16" in text
        assert "t=1234.5" in text

    def test_str_falls_back_to_target_without_path(self):
        err = RmaError("get failed", kind="rank_failed", op="get", target=2)
        assert "target=2" in str(err)
        assert "path=" not in str(err)

    def test_pickle_round_trip_preserves_every_field(self):
        err = RmaError(
            "acc failed", kind="link_partition", op="acc", src=1,
            target=2, path=(1, 2), retries=7, sim_time=99.25,
        )
        back = pickle.loads(pickle.dumps(err))
        assert type(back) is RmaError
        assert str(back) == str(err)
        for attr in ("kind", "op", "src", "target", "path", "retries",
                     "sim_time"):
            assert getattr(back, attr) == getattr(err, attr)

    def test_window_revoked_is_a_classified_rma_error(self):
        err = WindowRevoked("fence on revoked window w0",
                            win_id=("win", 0), failed_rank=3, src=1)
        assert isinstance(err, RmaError)
        assert err.kind == "window_revoked"
        assert err.win_id == ("win", 0)
        assert err.failed_rank == 3

    def test_window_revoked_pickles_with_subclass_fields(self):
        err = WindowRevoked("op on revoked window", win_id=("win", 7),
                            failed_rank=2)
        back = pickle.loads(pickle.dumps(err))
        assert type(back) is WindowRevoked
        assert back.kind == "window_revoked"
        assert back.win_id == ("win", 7)
        assert back.failed_rank == 2

    def test_rank_failed_notice_formats(self):
        notice = RankFailed(rank=3, observer=0, detected_at=1500.0,
                            via="transport")
        assert "rank 3" in str(notice)
        assert "via transport" in str(notice)


class TestLiveClassification:
    """The kinds a real failing run actually raises."""

    def test_killed_target_classifies_as_rank_failed(self):
        caught = []

        def program(ctx):
            alloc, tmems = yield from ctx.rma.expose_collective(512)
            src = ctx.mem.space.alloc(512)
            if ctx.rank == 1:
                yield ctx.sim.timeout(50_000.0)
                return "survived"
            for _ in range(100):
                req = yield from ctx.rma.put(
                    src, 0, 512, BYTE, tmems[1], 0, 512, BYTE,
                    remote_completion=True)
                err = yield from req.wait()
                if req.state == "failed":
                    caught.append(err)
                    return "failed"
            return "never failed"

        plan = FaultPlan().kill(rank=1, at=200.0).with_transport(
            retry_budget=3)
        w = World(n_ranks=2, network=generic_rdma(), fault_plan=plan,
                  seed=7, rma_errhandler=ERRORS_RETURN)
        results = w.run(program)
        assert results[0] == "failed"
        err = caught[0]
        assert isinstance(err, RmaError)
        assert err.kind == "rank_failed"
        assert err.path == (0, 1)
        # the artifact path: the live error must survive pickling
        back = pickle.loads(pickle.dumps(err))
        assert back.kind == "rank_failed" and back.path == (0, 1)
