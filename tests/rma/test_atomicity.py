"""Tests for the atomicity attribute and the three serializers.

The observable definition of atomicity here is the paper's: concurrent
updates to overlapping target memory must be serialized — each update
applies as a unit.  Without the attribute, fragments of concurrent
transfers interleave (permitted but undefined, §IV req. 3).
"""

import numpy as np
import pytest

from repro.datatypes import BYTE, INT32
from repro.machine import cray_xt5_catamount, cray_xt5_cnl
from repro.network import quadrics_like, seastar_portals
from repro.rma import RmaAttrs
from repro.runtime import World
from repro.sim import SimulationError


REGION = 20_000  # several MTUs


def overlapping_writers(attrs_kwargs):
    """Ranks 1..n-1 each put their own fill pattern over the same region
    on rank 0; returns rank 0's final bytes."""

    def program(ctx):
        alloc, tmems = yield from ctx.rma.expose_collective(REGION)
        result = None
        if ctx.rank != 0:
            src = ctx.mem.space.alloc(REGION, fill=ctx.rank)
            yield from ctx.rma.put(
                src, 0, REGION, BYTE, tmems[0], 0, REGION, BYTE,
                blocking=True, remote_completion=True, **attrs_kwargs,
            )
        yield from ctx.comm.barrier()
        yield from ctx.rma.complete_collective(ctx.comm)
        if ctx.rank == 0:
            result = np.unique(ctx.mem.load(alloc, 0, REGION)).tolist()
        return result

    return program


class TestTearing:
    def test_nonatomic_overlapping_puts_can_tear(self):
        """Without atomicity, at least one seed interleaves fragments of
        the two writers."""
        torn = False
        for seed in range(20):
            w = World(n_ranks=3, network=quadrics_like(), seed=seed)
            out = w.run(overlapping_writers({}))
            if len(out[0]) > 1:
                torn = True
                break
        assert torn, "expected fragment interleaving without atomicity"

    @pytest.mark.parametrize("serializer", ["thread", "lock", "progress"])
    def test_atomic_overlapping_puts_never_tear(self, serializer):
        """With atomicity, the final region is always exactly one
        writer's pattern, for every serializer and many seeds."""
        for seed in range(10):
            w = World(
                n_ranks=3, network=quadrics_like(), seed=seed,
                serializer=serializer,
            )
            out = w.run(overlapping_writers({"atomicity": True}))
            assert len(out[0]) == 1, (
                f"serializer={serializer} seed={seed}: torn result {out[0]}"
            )
            assert out[0][0] in (1, 2)


class TestSerializerSelection:
    def test_auto_picks_thread_on_cnl(self):
        w = World(machine=cray_xt5_cnl(4), serializer="auto")
        assert w.contexts[0].rma.engine.serializer.kind == "thread"

    def test_auto_falls_back_to_lock_on_catamount(self):
        """Catamount forbids user threads (paper §III-B1)."""
        w = World(machine=cray_xt5_catamount(4), serializer="auto")
        assert w.contexts[0].rma.engine.serializer.kind == "lock"

    def test_explicit_thread_on_catamount_rejected(self):
        with pytest.raises(ValueError, match="does not allow"):
            World(machine=cray_xt5_catamount(4), serializer="thread")

    def test_unknown_serializer_rejected(self):
        with pytest.raises(ValueError, match="unknown serializer"):
            World(n_ranks=2, serializer="quantum")


class TestLockSerializer:
    def test_lock_grants_are_fifo_and_exclusive(self):
        """Concurrent atomic accumulates through the coarse lock all land."""

        def program(ctx):
            alloc, tmems = yield from ctx.rma.expose_collective(8)
            if ctx.rank == 0:
                ctx.mem.space.view(alloc, "int32")[0] = 0
            yield from ctx.comm.barrier()
            if ctx.rank != 0:
                src = ctx.mem.space.alloc(4)
                ctx.mem.space.view(src, "int32")[0] = 1
                for _ in range(5):
                    yield from ctx.rma.accumulate(
                        src, 0, 1, INT32, tmems[0], 0, 1, INT32, op="sum",
                        atomicity=True, blocking=True,
                        remote_completion=True,
                    )
            yield from ctx.comm.barrier()
            yield from ctx.rma.complete_collective(ctx.comm)
            if ctx.rank == 0:
                return int(ctx.mem.space.view(alloc, "int32")[0])

        w = World(machine=cray_xt5_catamount(5), network=seastar_portals(),
                  serializer="lock")
        assert w.run(program)[0] == 4 * 5

    def test_lock_serializer_is_much_slower_than_thread(self):
        """The paper's headline: coarse-grain locking carries a
        significant performance penalty vs a thread serializer."""

        def program(ctx):
            alloc, tmems = yield from ctx.rma.expose_collective(1024)
            t0 = ctx.sim.now
            if ctx.rank != 0:
                src = ctx.mem.space.alloc(64, fill=1)
                for _ in range(10):
                    yield from ctx.rma.put(
                        src, 0, 64, BYTE, tmems[0], 0, 64, BYTE,
                        atomicity=True, blocking=True,
                    )
            yield from ctx.rma.complete_collective(ctx.comm)
            return ctx.sim.now - t0

        t_thread = max(
            World(machine=cray_xt5_cnl(4), network=seastar_portals(),
                  serializer="thread").run(program)
        )
        t_lock = max(
            World(machine=cray_xt5_catamount(4), network=seastar_portals(),
                  serializer="lock").run(program)
        )
        assert t_lock > 2.0 * t_thread, (t_lock, t_thread)


class TestProgressSerializer:
    def test_progress_applies_eventually_but_slowly(self):
        def program(ctx):
            alloc, tmems = yield from ctx.rma.expose_collective(64)
            t0 = ctx.sim.now
            if ctx.rank == 1:
                src = ctx.mem.space.alloc(8, fill=9)
                yield from ctx.rma.put(src, 0, 8, BYTE, tmems[0], 0, 8, BYTE,
                                       atomicity=True, blocking=True,
                                       remote_completion=True)
            yield from ctx.comm.barrier()
            if ctx.rank == 0:
                return (ctx.mem.load(alloc, 0, 8).tolist(), ctx.sim.now - t0)
            return (None, ctx.sim.now - t0)

        w = World(n_ranks=2, serializer="progress")
        out = w.run(program)
        assert out[0][0] == [9] * 8
        # waiting for the target's progress poll dominates: clearly
        # slower than the same exchange through the thread serializer
        t_thread = World(n_ranks=2, serializer="thread").run(program)[1][1]
        assert out[1][1] > 1.4 * t_thread


class TestThreadSerializerStats:
    def test_jobs_counted(self):
        def program(ctx):
            alloc, tmems = yield from ctx.rma.expose_collective(64)
            if ctx.rank == 1:
                src = ctx.mem.space.alloc(8)
                for _ in range(3):
                    yield from ctx.rma.put(src, 0, 8, BYTE, tmems[0], 0, 8,
                                           BYTE, atomicity=True,
                                           blocking=True,
                                           remote_completion=True)
            yield from ctx.comm.barrier()

        w = World(n_ranks=2, serializer="thread")
        w.run(program)
        assert w.contexts[0].rma.engine.serializer.jobs_executed == 3


class TestAtomicWithOrdering:
    def test_atomic_ordered_puts_respect_order(self):
        """atomicity + ordering combined: last ordered atomic put wins."""

        def program(ctx):
            alloc, tmems = yield from ctx.rma.expose_collective(REGION)
            result = None
            if ctx.rank == 1:
                a = ctx.mem.space.alloc(REGION, fill=5)
                b = ctx.mem.space.alloc(REGION, fill=6)
                attrs = RmaAttrs(atomicity=True, ordering=True,
                                 remote_completion=True, blocking=True)
                yield from ctx.rma.put(a, 0, REGION, BYTE, tmems[0], 0,
                                       REGION, BYTE, attrs=attrs)
                yield from ctx.rma.put(b, 0, REGION, BYTE, tmems[0], 0,
                                       REGION, BYTE, attrs=attrs)
            yield from ctx.comm.barrier()
            if ctx.rank == 0:
                result = np.unique(ctx.mem.load(alloc, 0, REGION)).tolist()
            return result

        for seed in range(5):
            out = World(n_ranks=2, network=quadrics_like(), seed=seed,
                        serializer="thread").run(program)
            assert out[0] == [6], f"seed {seed}: {out[0]}"
