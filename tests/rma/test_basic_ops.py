"""Tests for basic strawman RMA data movement."""

import numpy as np
import pytest

from repro.datatypes import BYTE, FLOAT64, INT32, contiguous, vector
from repro.machine import hybrid_accelerator
from repro.rma import RmaAttrs, RmaError
from repro.runtime import World


def run(program, n=2, **kw):
    return World(n_ranks=n, **kw).run(program)


class TestExpose:
    def test_expose_returns_descriptor(self):
        def program(ctx):
            a = ctx.mem.space.alloc(256)
            tm = ctx.rma.expose(a)
            assert tm.rank == ctx.rank
            assert tm.size == 256
            assert tm.coherent
            return tm.mem_id
            yield  # pragma: no cover

        ids = run(program)
        assert all(i >= 1 for i in ids)

    def test_expose_is_noncollective_descriptor_ships_in_message(self):
        """The paper's §V model: owner exposes locally, passes the
        descriptor to whoever needs it."""

        def program(ctx):
            if ctx.rank == 0:
                a = ctx.mem.space.alloc(64)
                tm = ctx.rma.expose(a)  # purely local, no other rank involved
                yield from ctx.comm.send(tm, dest=1)
                yield from ctx.comm.barrier()
                return ctx.mem.load(a, 0, 4).tolist()
            tm = yield from ctx.comm.recv(source=0)
            src = ctx.mem.space.alloc(4)
            ctx.mem.store(src, 0, np.array([9, 8, 7, 6], dtype=np.uint8))
            yield from ctx.rma.put(src, 0, 4, BYTE, tm, 0, 4, BYTE,
                                   blocking=True, remote_completion=True)
            yield from ctx.comm.barrier()

        assert run(program)[0] == [9, 8, 7, 6]

    def test_withdraw_blocks_future_access(self):
        def program(ctx):
            alloc, tmems = yield from ctx.rma.expose_collective(64)
            if ctx.rank == 0:
                ctx.rma.withdraw(tmems[0])
            yield from ctx.comm.barrier()
            if ctx.rank == 1:
                src = ctx.mem.space.alloc(4)
                yield from ctx.rma.put(src, 0, 4, BYTE, tmems[0], 0, 4, BYTE,
                                       blocking=True)
                yield from ctx.rma.complete(ctx.comm, 0)

        with pytest.raises(RmaError, match="withdrawn"):
            run(program)

    def test_cannot_expose_foreign_memory(self):
        def program(ctx):
            alloc, tmems = yield from ctx.rma.expose_collective(8)
            if ctx.rank == 1:
                foreign = tmems[0]
                bad_alloc = type(alloc)(rank=0, alloc_id=1, size=8)
                ctx.rma.expose(bad_alloc)

        with pytest.raises(RmaError, match="owned by"):
            run(program)


class TestPut:
    def test_blocking_put_then_get_roundtrip(self):
        def program(ctx):
            alloc, tmems = yield from ctx.rma.expose_collective(4096)
            if ctx.rank == 1:
                src = ctx.mem.space.alloc(1000)
                ctx.mem.store(src, 0, (np.arange(1000) % 251).astype(np.uint8))
                yield from ctx.rma.put(src, 0, 1000, BYTE, tmems[0], 12, 1000,
                                       BYTE, blocking=True)
                yield from ctx.rma.complete(ctx.comm, 0)
                dst = ctx.mem.space.alloc(1000)
                yield from ctx.rma.get(dst, 0, 1000, BYTE, tmems[0], 12, 1000,
                                       BYTE, blocking=True)
                return ctx.mem.load(dst, 0, 1000).tolist()

        out = run(program)
        assert out[1] == [i % 251 for i in range(1000)]

    def test_nonblocking_put_request_wait(self):
        def program(ctx):
            alloc, tmems = yield from ctx.rma.expose_collective(64)
            if ctx.rank == 1:
                src = ctx.mem.space.alloc(8, fill=5)
                req = yield from ctx.rma.put(src, 0, 8, BYTE, tmems[0], 0, 8,
                                             BYTE, remote_completion=True)
                assert not req.complete  # nonblocking: still in flight
                yield from req.wait()
            yield from ctx.comm.barrier()
            if ctx.rank == 0:
                return ctx.mem.load(alloc, 0, 8).tolist()

        assert run(program)[0] == [5] * 8

    def test_put_larger_than_mtu_fragments_and_lands_intact(self):
        def program(ctx):
            alloc, tmems = yield from ctx.rma.expose_collective(100_000)
            if ctx.rank == 1:
                n = 50_000  # >> default 4096 MTU
                src = ctx.mem.space.alloc(n)
                data = (np.arange(n) % 255).astype(np.uint8)
                ctx.mem.store(src, 0, data)
                yield from ctx.rma.put(src, 0, n, BYTE, tmems[0], 0, n, BYTE,
                                       blocking=True, remote_completion=True)
            yield from ctx.comm.barrier()
            if ctx.rank == 0:
                got = ctx.mem.load(alloc, 0, 50_000)
                return bool((got == (np.arange(50_000) % 255)).all())

        assert run(program)[0] is True

    def test_strided_put_vector_datatypes(self):
        """Noncontiguous on both sides (requirement 7)."""

        def program(ctx):
            alloc, tmems = yield from ctx.rma.expose_collective(256)
            t = vector(4, 1, 2, INT32)  # 4 int32 every other slot
            if ctx.rank == 1:
                src = ctx.mem.space.alloc(64)
                v = ctx.mem.space.view(src, "int32")
                v[:] = np.arange(16)
                # origin contiguous -> target strided
                yield from ctx.rma.put(src, 0, 4, INT32, tmems[0], 0, 1, t,
                                       blocking=True, remote_completion=True)
            yield from ctx.comm.barrier()
            if ctx.rank == 0:
                v = ctx.mem.space.view(alloc, "int32", count=8)
                return v.tolist()

        out = run(program)
        assert out[0] == [0, 0, 1, 0, 2, 0, 3, 0]

    def test_put_out_of_bounds_rejected(self):
        def program(ctx):
            alloc, tmems = yield from ctx.rma.expose_collective(16)
            if ctx.rank == 1:
                src = ctx.mem.space.alloc(32)
                yield from ctx.rma.put(src, 0, 32, BYTE, tmems[0], 0, 32, BYTE)

        with pytest.raises(RmaError, match="outside target_mem"):
            run(program)

    def test_mismatched_layout_sizes_rejected(self):
        def program(ctx):
            alloc, tmems = yield from ctx.rma.expose_collective(64)
            if ctx.rank == 1:
                src = ctx.mem.space.alloc(64)
                yield from ctx.rma.put(src, 0, 8, BYTE, tmems[0], 0, 4, BYTE)

        with pytest.raises(RmaError, match="does not match"):
            run(program)

    def test_zero_size_put_completes_instantly(self):
        def program(ctx):
            alloc, tmems = yield from ctx.rma.expose_collective(16)
            if ctx.rank == 1:
                src = ctx.mem.space.alloc(16)
                req = yield from ctx.rma.put(src, 0, 0, BYTE, tmems[0], 0, 0,
                                             BYTE)
                return req.complete
            yield from ctx.comm.barrier()

        # note: rank 0 waits on barrier; rank 1 returns before it — run
        # both to completion via a barrier on both sides
        def program2(ctx):
            alloc, tmems = yield from ctx.rma.expose_collective(16)
            result = None
            if ctx.rank == 1:
                src = ctx.mem.space.alloc(16)
                req = yield from ctx.rma.put(src, 0, 0, BYTE, tmems[0], 0, 0,
                                             BYTE)
                result = req.complete
            yield from ctx.comm.barrier()
            return result

        assert run(program2)[1] is True

    def test_target_rank_mismatch_detected(self):
        def program(ctx):
            alloc, tmems = yield from ctx.rma.expose_collective(16)
            if ctx.rank == 1:
                src = ctx.mem.space.alloc(8)
                yield from ctx.rma.put(src, 0, 8, BYTE, tmems[0], 0, 8, BYTE,
                                       target_rank=1)

        with pytest.raises(RmaError, match="does not own"):
            run(program)


class TestGet:
    def test_get_reads_remote_memory(self):
        def program(ctx):
            alloc, tmems = yield from ctx.rma.expose_collective(128)
            if ctx.rank == 0:
                ctx.mem.store(alloc, 0, np.full(128, 77, dtype=np.uint8))
            yield from ctx.comm.barrier()
            if ctx.rank == 1:
                dst = ctx.mem.space.alloc(128)
                yield from ctx.rma.get(dst, 0, 128, BYTE, tmems[0], 0, 128,
                                       BYTE, blocking=True)
                return ctx.mem.load(dst, 0, 128).tolist()

        assert run(program)[1] == [77] * 128

    def test_large_get_fragments(self):
        def program(ctx):
            alloc, tmems = yield from ctx.rma.expose_collective(40_000)
            if ctx.rank == 0:
                ctx.mem.store(
                    alloc, 0, (np.arange(40_000) % 253).astype(np.uint8)
                )
            yield from ctx.comm.barrier()
            if ctx.rank == 1:
                dst = ctx.mem.space.alloc(40_000)
                yield from ctx.rma.get(dst, 0, 40_000, BYTE, tmems[0], 0,
                                       40_000, BYTE, blocking=True)
                got = ctx.mem.load(dst, 0, 40_000)
                return bool((got == (np.arange(40_000) % 253)).all())

        assert run(program)[1] is True

    def test_get_into_strided_origin(self):
        def program(ctx):
            alloc, tmems = yield from ctx.rma.expose_collective(64)
            if ctx.rank == 0:
                v = ctx.mem.space.view(alloc, "int32")
                v[:4] = [10, 20, 30, 40]
            yield from ctx.comm.barrier()
            if ctx.rank == 1:
                dst = ctx.mem.space.alloc(64)
                t = vector(4, 1, 2, INT32)
                yield from ctx.rma.get(dst, 0, 1, t, tmems[0], 0, 4, INT32,
                                       blocking=True)
                return ctx.mem.space.view(dst, "int32", count=8).tolist()

        assert run(program)[1] == [10, 0, 20, 0, 30, 0, 40, 0]

    def test_get_origin_bounds_checked(self):
        def program(ctx):
            alloc, tmems = yield from ctx.rma.expose_collective(64)
            if ctx.rank == 1:
                dst = ctx.mem.space.alloc(4)
                yield from ctx.rma.get(dst, 0, 64, BYTE, tmems[0], 0, 64, BYTE)

        with pytest.raises(Exception):
            run(program)


class TestAccumulate:
    @pytest.mark.parametrize(
        "op,seed_vals,incoming,expected",
        [
            ("sum", [10, 20], [1, 2], [11, 22]),
            ("prod", [3, 4], [2, 2], [6, 8]),
            ("min", [5, 1], [3, 3], [3, 1]),
            ("max", [5, 1], [3, 3], [5, 3]),
            ("replace", [9, 9], [4, 2], [4, 2]),
        ],
    )
    def test_ops(self, op, seed_vals, incoming, expected):
        def program(ctx):
            alloc, tmems = yield from ctx.rma.expose_collective(64)
            if ctx.rank == 0:
                ctx.mem.space.view(alloc, "int32")[: len(seed_vals)] = seed_vals
            yield from ctx.comm.barrier()
            if ctx.rank == 1:
                src = ctx.mem.space.alloc(64)
                ctx.mem.space.view(src, "int32")[: len(incoming)] = incoming
                yield from ctx.rma.accumulate(
                    src, 0, len(incoming), INT32, tmems[0], 0, len(incoming),
                    INT32, op=op, blocking=True, remote_completion=True,
                )
            yield from ctx.comm.barrier()
            if ctx.rank == 0:
                return ctx.mem.space.view(alloc, "int32")[
                    : len(expected)
                ].tolist()

        assert run(program)[0] == expected

    def test_daxpy(self):
        def program(ctx):
            alloc, tmems = yield from ctx.rma.expose_collective(64)
            if ctx.rank == 0:
                ctx.mem.space.view(alloc, "float64")[:2] = [1.0, 2.0]
            yield from ctx.comm.barrier()
            if ctx.rank == 1:
                src = ctx.mem.space.alloc(64)
                ctx.mem.space.view(src, "float64")[:2] = [10.0, 10.0]
                yield from ctx.rma.accumulate(
                    src, 0, 2, FLOAT64, tmems[0], 0, 2, FLOAT64,
                    op="daxpy", scale=0.5, blocking=True,
                    remote_completion=True,
                )
            yield from ctx.comm.barrier()
            if ctx.rank == 0:
                return ctx.mem.space.view(alloc, "float64")[:2].tolist()

        assert run(program)[0] == [6.0, 7.0]

    def test_unknown_op_rejected(self):
        def program(ctx):
            alloc, tmems = yield from ctx.rma.expose_collective(16)
            if ctx.rank == 1:
                src = ctx.mem.space.alloc(4)
                yield from ctx.rma.accumulate(src, 0, 1, INT32, tmems[0], 0, 1,
                                              INT32, op="xor")

        with pytest.raises(RmaError, match="unknown accumulate"):
            run(program)

    def test_mixed_struct_accumulate_rejected(self):
        from repro.datatypes import struct_type

        def program(ctx):
            alloc, tmems = yield from ctx.rma.expose_collective(64)
            if ctx.rank == 1:
                src = ctx.mem.space.alloc(64)
                mixed = struct_type([1, 1], [0, 8], [INT32, FLOAT64])
                yield from ctx.rma.accumulate(src, 0, 1, mixed, tmems[0], 0, 1,
                                              mixed)

        with pytest.raises(RmaError, match="uniform element"):
            run(program)


class TestHeterogeneous:
    """§III-B3: mixed endianness and pointer width."""

    def test_put_converts_endianness(self):
        # node 0/1 big-endian 64-bit hosts; node 2/3 little-endian 32-bit
        machine = hybrid_accelerator(n_host_nodes=2, n_accel_nodes=2)

        def program(ctx):
            alloc, tmems = yield from ctx.rma.expose_collective(64)
            assert tmems[0].endianness == "big"
            assert tmems[2].endianness == "little"
            assert tmems[2].pointer_bits == 32
            if ctx.rank == 2:  # little-endian accel writes to big-endian host
                src = ctx.mem.space.alloc(16)
                ctx.mem.space.view(src, "int32")[:2] = [0x01020304, 7]
                yield from ctx.rma.put(src, 0, 2, INT32, tmems[0], 0, 2,
                                       INT32, blocking=True,
                                       remote_completion=True)
            yield from ctx.comm.barrier()
            if ctx.rank == 0:
                return ctx.mem.space.view(alloc, "int32")[:2].tolist()

        out = World(machine=machine).run(program)
        assert out[0] == [0x01020304, 7]

    def test_get_converts_endianness(self):
        machine = hybrid_accelerator(n_host_nodes=2, n_accel_nodes=2)

        def program(ctx):
            alloc, tmems = yield from ctx.rma.expose_collective(64)
            if ctx.rank == 0:  # big-endian host owns the data
                ctx.mem.space.view(alloc, "int64")[0] = 0x0A0B0C0D
            yield from ctx.comm.barrier()
            if ctx.rank == 3:  # little-endian accel reads it
                dst = ctx.mem.space.alloc(8)
                from repro.datatypes import INT64

                yield from ctx.rma.get(dst, 0, 1, INT64, tmems[0], 0, 1,
                                       INT64, blocking=True)
                return int(ctx.mem.space.view(dst, "int64")[0])

        out = World(machine=machine).run(program)
        assert out[3] == 0x0A0B0C0D

    def test_byte_put_needs_no_conversion(self):
        machine = hybrid_accelerator(n_host_nodes=1, n_accel_nodes=1)

        def program(ctx):
            alloc, tmems = yield from ctx.rma.expose_collective(8)
            if ctx.rank == 1:
                src = ctx.mem.space.alloc(4)
                ctx.mem.store(src, 0, np.array([1, 2, 3, 4], dtype=np.uint8))
                yield from ctx.rma.put(src, 0, 4, BYTE, tmems[0], 0, 4, BYTE,
                                       blocking=True, remote_completion=True)
            yield from ctx.comm.barrier()
            if ctx.rank == 0:
                return ctx.mem.load(alloc, 0, 4).tolist()

        assert World(machine=machine).run(program)[0] == [1, 2, 3, 4]
