"""White-box tests pinning the engine's protocol decisions."""

import pytest

from repro.machine import cray_xt5_cnl, nec_sx9
from repro.network import infiniband_like, quadrics_like, seastar_portals
from repro.rma import RmaAttrs
from repro.rma.engine import _OriginPeer, _TargetPeer
from repro.rma.target_mem import TargetMem
from repro.runtime import World


def engine_on(network, machine=None):
    w = World(machine=machine or cray_xt5_cnl(2), network=network)
    return w.contexts[0].rma.engine


def tmem(coherent=True):
    return TargetMem(rank=1, mem_id=1, size=1024, pointer_bits=64,
                     endianness="little", coherent=coherent)


class TestRemoteModeSelection:
    """The hw/sw/flush decision matrix of _pick_remote_mode."""

    def test_default_is_flush(self):
        eng = engine_on(seastar_portals())
        mode = eng._pick_remote_mode(RmaAttrs(), tmem(), 0, False, False,
                                     _OriginPeer())
        assert mode == "flush"

    def test_rc_on_eq_network_uses_hw(self):
        eng = engine_on(seastar_portals())
        mode = eng._pick_remote_mode(
            RmaAttrs(remote_completion=True), tmem(), 0, False, False,
            _OriginPeer())
        assert mode == "hw"

    def test_rc_without_eq_uses_sw(self):
        eng = engine_on(infiniband_like())
        mode = eng._pick_remote_mode(
            RmaAttrs(remote_completion=True), tmem(), 0, False, False,
            _OriginPeer())
        assert mode == "sw"

    def test_noncoherent_target_forces_sw(self):
        eng = engine_on(seastar_portals())
        mode = eng._pick_remote_mode(
            RmaAttrs(remote_completion=True), tmem(coherent=False), 0,
            False, False, _OriginPeer())
        assert mode == "sw"

    def test_atomic_always_sw(self):
        eng = engine_on(seastar_portals())
        for via_queue, via_lock in ((True, False), (False, True)):
            mode = eng._pick_remote_mode(
                RmaAttrs(atomicity=True), tmem(), 0, via_queue, via_lock,
                _OriginPeer())
            assert mode == "sw"

    def test_gated_op_on_unordered_fabric_uses_sw(self):
        eng = engine_on(quadrics_like())
        mode = eng._pick_remote_mode(
            RmaAttrs(remote_completion=True, ordering=True), tmem(),
            barrier=3, atomic_via_serializer=False, lock_serialized=False,
            peer=_OriginPeer())
        assert mode == "sw"

    def test_gated_op_on_ordered_fabric_keeps_hw(self):
        eng = engine_on(seastar_portals())
        peer = _OriginPeer()
        mode = eng._pick_remote_mode(
            RmaAttrs(remote_completion=True, ordering=True), tmem(),
            barrier=3, atomic_via_serializer=False, lock_serialized=False,
            peer=peer)
        assert mode == "hw"

    def test_barrier_covering_atomic_op_invalidates_hw(self):
        """An earlier atomic op applies late even on an ordered fabric,
        so a barrier spanning it cannot rely on delivery acks."""
        eng = engine_on(seastar_portals())
        peer = _OriginPeer()
        peer.last_atomic_seq = 2
        mode = eng._pick_remote_mode(
            RmaAttrs(remote_completion=True, ordering=True), tmem(),
            barrier=3, atomic_via_serializer=False, lock_serialized=False,
            peer=peer)
        assert mode == "sw"
        # ...but a barrier below the atomic seq is fine
        peer.last_atomic_seq = 9
        mode = eng._pick_remote_mode(
            RmaAttrs(remote_completion=True, ordering=True), tmem(),
            barrier=3, atomic_via_serializer=False, lock_serialized=False,
            peer=peer)
        assert mode == "hw"


class TestWatermarkBookkeeping:
    """The applied_upto/extra-set logic used by flushes and gating."""

    def make(self):
        return _TargetPeer()

    def test_in_order_application(self):
        peer = self.make()
        peer.applied_upto = 0
        for seq in (1, 2, 3):
            if seq == peer.applied_upto + 1:
                peer.applied_upto = seq
        assert peer.applied_upto == 3

    def test_out_of_order_absorbed_via_engine(self):
        """Drive the real _op_applied with synthetic inbound ops."""
        from repro.rma.engine import _InboundOp

        w = World(n_ranks=2)
        eng = w.contexts[0].rma.engine
        peer = eng._target_peer(1)

        def fake_op(seq):
            return _InboundOp({
                "seq": seq, "barrier": 0, "src": 1, "kind": "put",
                "nfrags": 1, "ack": "none",
            })

        eng._op_applied(peer, fake_op(2))
        assert peer.applied_upto == 0
        assert peer.applied_extra == {2}
        eng._op_applied(peer, fake_op(1))
        assert peer.applied_upto == 2
        assert peer.applied_extra == set()
        eng._op_applied(peer, fake_op(3))
        assert peer.applied_upto == 3

    def test_barrier_ok(self):
        peer = self.make()
        peer.applied_upto = 5
        assert peer.barrier_ok(0)
        assert peer.barrier_ok(5)
        assert not peer.barrier_ok(6)


class TestRegistrationCost:
    def test_scales_with_pages(self):
        eng = engine_on(seastar_portals())
        small = eng.registration_cost(100)
        big = eng.registration_cost(40 * 4096)
        assert big > small
        assert small >= eng.timings.mem_register_base

    def test_zero_bytes_still_costs_base(self):
        eng = engine_on(seastar_portals())
        assert eng.registration_cost(0) > 0


class TestOrderBookkeeping:
    def test_order_one_sets_barrier_to_last_seq(self):
        w = World(n_ranks=2)
        eng = w.contexts[0].rma.engine
        peer = eng._origin_peer(1)
        peer.alloc_seq()
        peer.alloc_seq()
        eng.order_one(1)
        assert peer.order_barrier == 2
        peer.alloc_seq()
        eng.order_all()
        assert peer.order_barrier == 3
