"""Tests for RMA to non-cache-coherent targets (NEC SX style, §III-B2)."""

import numpy as np

from repro.datatypes import BYTE
from repro.machine import generic_cluster, nec_sx9
from repro.runtime import World


def test_target_mem_descriptor_reports_noncoherent():
    def program(ctx):
        alloc, tmems = yield from ctx.rma.expose_collective(64)
        return tmems[0].coherent

    out = World(machine=nec_sx9(n_nodes=2, ranks_per_node=1)).run(program)
    assert out == [False, False]


def test_put_visible_to_target_cpu_after_complete():
    """The engine's invalidate-on-apply protocol means that once the
    origin's complete() returns, the target's *cached* loads see the
    data — the target need not fence manually."""

    def program(ctx):
        alloc, tmems = yield from ctx.rma.expose_collective(256)
        result = None
        if ctx.rank == 0:
            # warm the scalar cache with the old (zero) contents
            assert ctx.mem.load(alloc, 0, 64).tolist() == [0] * 64
            yield from ctx.comm.recv(source=1)  # wait for writer's signal
            result = ctx.mem.load(alloc, 0, 64).tolist()
        else:
            src = ctx.mem.space.alloc(64, fill=7)
            yield from ctx.rma.put(src, 0, 64, BYTE, tmems[0], 0, 64, BYTE,
                                   blocking=True)
            yield from ctx.rma.complete(ctx.comm, 0)
            yield from ctx.comm.send("done", dest=0)
        yield from ctx.comm.barrier()
        return result

    out = World(machine=nec_sx9(n_nodes=2, ranks_per_node=1)).run(program)
    assert out[0] == [7] * 64


def test_raw_memory_updated_before_invalidation_completes():
    """Fragments DMA into memory immediately; only *visibility to the
    cached CPU path* waits for target involvement."""

    def program(ctx):
        alloc, tmems = yield from ctx.rma.expose_collective(64)
        result = None
        if ctx.rank == 0:
            ctx.mem.load(alloc, 0, 8)  # cache the line
            yield from ctx.comm.recv(source=1)
            raw = ctx.mem.space.read(alloc, 0, 8).tolist()  # memory truth
            result = raw
        else:
            src = ctx.mem.space.alloc(8, fill=3)
            yield from ctx.rma.put(src, 0, 8, BYTE, tmems[0], 0, 8, BYTE,
                                   blocking=True, remote_completion=True)
            yield from ctx.comm.send("go", dest=0)
        yield from ctx.comm.barrier()
        return result

    out = World(machine=nec_sx9(n_nodes=2, ranks_per_node=1)).run(program)
    assert out[0] == [3] * 8


def test_remote_completion_costs_more_on_noncoherent_target():
    """Abl. A3 shape check: the same blocking put with remote completion
    is dearer against an SX-like target because the target must be
    involved (invalidation) before completion."""

    def program(ctx):
        alloc, tmems = yield from ctx.rma.expose_collective(4096)
        elapsed = None
        if ctx.rank == 1:
            src = ctx.mem.space.alloc(1024)
            t0 = ctx.sim.now
            for _ in range(10):
                yield from ctx.rma.put(src, 0, 1024, BYTE, tmems[0], 0, 1024,
                                       BYTE, blocking=True,
                                       remote_completion=True)
            elapsed = ctx.sim.now - t0
        yield from ctx.comm.barrier()
        return elapsed

    t_coherent = World(machine=generic_cluster(2)).run(program)[1]
    t_sx = World(machine=nec_sx9(n_nodes=2, ranks_per_node=1)).run(program)[1]
    assert t_sx > t_coherent


def test_get_from_noncoherent_target_is_fresh():
    """Write-through means memory is always current, so gets need no
    extra target involvement."""

    def program(ctx):
        alloc, tmems = yield from ctx.rma.expose_collective(64)
        result = None
        if ctx.rank == 0:
            ctx.mem.store(alloc, 0, np.full(16, 5, dtype=np.uint8))
        yield from ctx.comm.barrier()
        if ctx.rank == 1:
            dst = ctx.mem.space.alloc(16)
            yield from ctx.rma.get(dst, 0, 16, BYTE, tmems[0], 0, 16, BYTE,
                                   blocking=True)
            result = ctx.mem.load(dst, 0, 16).tolist()
        yield from ctx.comm.barrier()
        return result

    out = World(machine=nec_sx9(n_nodes=2, ranks_per_node=1)).run(program)
    assert out[1] == [5] * 16


def test_atomic_put_to_noncoherent_target():
    def program(ctx):
        alloc, tmems = yield from ctx.rma.expose_collective(64)
        result = None
        if ctx.rank == 0:
            ctx.mem.load(alloc, 0, 32)  # cache it
            yield from ctx.comm.recv(source=1)
            result = ctx.mem.load(alloc, 0, 32).tolist()
        else:
            src = ctx.mem.space.alloc(32, fill=8)
            yield from ctx.rma.put(src, 0, 32, BYTE, tmems[0], 0, 32, BYTE,
                                   atomicity=True, blocking=True,
                                   remote_completion=True)
            yield from ctx.comm.send("done", dest=0)
        yield from ctx.comm.barrier()
        return result

    out = World(machine=nec_sx9(n_nodes=2, ranks_per_node=1),
                serializer="thread").run(program)
    assert out[0] == [8] * 32
