"""Property-based tests on RMA engine invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datatypes import BYTE, INT16, INT32, contiguous, indexed, vector
from repro.network import NetworkConfig, quadrics_like
from repro.rma.layout import Fragment, fragment_layout
from repro.runtime import World


# ----------------------------------------------------------------------
# Fragmentation invariants (pure function: cheap to hammer)
# ----------------------------------------------------------------------

dtype_strategy = st.one_of(
    st.builds(lambda n: contiguous(n, BYTE), st.integers(1, 300)),
    st.builds(lambda n: contiguous(n, INT32), st.integers(1, 80)),
    st.builds(
        lambda c, b, s: vector(c, b, b + s, INT16),
        st.integers(1, 10), st.integers(1, 6), st.integers(0, 5),
    ),
    st.builds(
        lambda lens: indexed(
            lens,
            [sum(lens[:i]) + 2 * i for i in range(len(lens))],
            INT32,
        ),
        st.lists(st.integers(1, 5), min_size=1, max_size=6),
    ),
)


@given(dtype=dtype_strategy, count=st.integers(1, 4),
       mtu=st.integers(8, 512), seed=st.integers(0, 2**31))
@settings(max_examples=200, deadline=None)
def test_fragmentation_partitions_wire_exactly(dtype, count, mtu, seed):
    """Fragments cover every wire byte once, respect the MTU, split only
    at element boundaries, and scatter to the same target bytes as the
    unfragmented layout."""
    rng = np.random.default_rng(seed)
    wire = rng.integers(0, 256, count * dtype.size, dtype=np.uint8)
    frags = fragment_layout(dtype, count, wire, mtu)

    # data partition
    total = np.concatenate([f.data for f in frags]) if frags else np.array(
        [], dtype=np.uint8)
    assert (total == wire).all()
    # MTU respected, element-aligned sub-segments
    for f in frags:
        assert sum(n for _, n, _ in f.subsegs) == len(f.data)
        assert len(f.data) <= mtu
        for _disp, nbytes, elem in f.subsegs:
            assert nbytes % elem == 0
    # target coverage identical to the flattened layout
    expected = []
    for seg in dtype.segments_for(count):
        expected.append((seg.disp, seg.nbytes))
    got = []
    for f in frags:
        for disp, nbytes, _ in f.subsegs:
            if got and got[-1][0] + got[-1][1] == disp:
                got[-1] = (got[-1][0], got[-1][1] + nbytes)
            else:
                got.append((disp, nbytes))
    # coalesce expected the same way
    norm = []
    for disp, nbytes in expected:
        if norm and norm[-1][0] + norm[-1][1] == disp:
            norm[-1] = (norm[-1][0], norm[-1][1] + nbytes)
        else:
            norm.append((disp, nbytes))
    assert got == norm

    # indices are sequential and totals consistent
    assert [f.index for f in frags] == list(range(len(frags)))
    assert all(f.total == len(frags) for f in frags)


# ----------------------------------------------------------------------
# End-to-end: ordered put sequences replay like sequential writes
# ----------------------------------------------------------------------

@given(
    ops=st.lists(
        st.tuples(st.integers(0, 96), st.integers(1, 64),
                  st.integers(1, 255)),
        min_size=1, max_size=8,
    ),
    seed=st.integers(0, 50),
)
@settings(max_examples=25, deadline=None)
def test_ordered_puts_replay_sequentially_on_unordered_fabric(ops, seed):
    """Any sequence of (offset, length, fill) ordered puts from one
    origin produces exactly the memory of applying them in order —
    even on a jittery, reordering fabric."""

    def program(ctx):
        alloc, tmems = yield from ctx.rma.expose_collective(256)
        if ctx.rank == 1:
            for off, length, fill in ops:
                src = ctx.mem.space.alloc(length, fill=fill)
                yield from ctx.rma.put(src, 0, length, BYTE, tmems[0],
                                       off, length, BYTE, ordering=True)
            yield from ctx.rma.complete(ctx.comm, 0)
            yield from ctx.comm.send("done", dest=0)
            yield from ctx.comm.barrier()
            return None
        yield from ctx.comm.recv(source=1)
        data = ctx.mem.load(alloc, 0, 256).tolist()
        yield from ctx.comm.barrier()
        return data

    # tiny MTU forces fragmentation so reordering has teeth
    net = quadrics_like().with_(mtu=16)
    out = World(n_ranks=2, network=net, seed=seed).run(program)

    ref = np.zeros(256, dtype=np.uint8)
    for off, length, fill in ops:
        ref[off : off + length] = fill
    assert out[0] == ref.tolist()


@given(
    n_ranks=st.integers(2, 5),
    increments=st.integers(1, 6),
    seed=st.integers(0, 20),
)
@settings(max_examples=20, deadline=None)
def test_fetch_and_add_linearizes(n_ranks, increments, seed):
    """Concurrent fetch-and-adds always linearize: the fetched values
    are a permutation of 0..N-1 and the counter ends at N."""

    def program(ctx):
        alloc, tmems = yield from ctx.rma.expose_collective(8)
        got = []
        if ctx.rank != 0:
            for _ in range(increments):
                v = yield from ctx.rma.fetch_and_add(tmems[0], 0, "int64", 1)
                got.append(int(v))
        yield from ctx.comm.barrier()
        if ctx.rank == 0:
            return int(ctx.mem.space.view(alloc, "int64")[0])
        return got

    out = World(n_ranks=n_ranks, network=quadrics_like(), seed=seed).run(
        program
    )
    total = (n_ranks - 1) * increments
    assert out[0] == total
    fetched = sorted(v for r in out[1:] for v in r)
    assert fetched == list(range(total))


@given(
    pattern=st.lists(st.integers(1, 200), min_size=1, max_size=5),
    seed=st.integers(0, 20),
)
@settings(max_examples=20, deadline=None)
def test_get_after_complete_reads_back_exact_bytes(pattern, seed):
    """put(list) ; complete ; get — the paper's read/write consistency,
    property-tested over arbitrary write patterns."""

    def program(ctx):
        alloc, tmems = yield from ctx.rma.expose_collective(512)
        result = None
        if ctx.rank == 1:
            n = len(pattern)
            src = ctx.mem.space.alloc(n)
            ctx.mem.store(src, 0, np.array(pattern, dtype=np.uint8))
            yield from ctx.rma.put(src, 0, n, BYTE, tmems[0], 7, n, BYTE,
                                   ordering=True)
            dst = ctx.mem.space.alloc(n)
            yield from ctx.rma.get(dst, 0, n, BYTE, tmems[0], 7, n, BYTE,
                                   ordering=True, blocking=True)
            result = ctx.mem.load(dst, 0, n).tolist()
        yield from ctx.comm.barrier()
        return result

    out = World(n_ranks=2, network=quadrics_like(), seed=seed).run(program)
    assert out[1] == pattern
