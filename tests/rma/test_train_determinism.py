"""Determinism pins for the PR-6 fast paths: the vectorized op-train
and the collective nexus.

Both are pure wall-clock optimizations — every simulated timestamp must
be bit-identical with the fast path on or off, on every fabric, and the
eligibility gates must self-disable them (rather than drift) under
tracing, faults, and routed topologies.  Each parity test runs the same
workload twice, fast path off then on, and asserts float equality of
the returned simulated times; positive-engagement tests pin that the
fast paths actually fire on the configurations they claim to cover.
"""

import pytest

from repro.bench.workloads import fig2_attribute_cost, halo_exchange_time
from repro.faults import FaultPlan
from repro.mpi.nexus import CollectiveNexus
from repro.network.config import (
    generic_rdma,
    infiniband_like,
    quadrics_like,
    seastar_portals,
)
from repro.network.nic import Nic
from repro.rma.engine import RmaEngine
from repro.topo import fattree_network, torus_network

# The seven fabrics the parity sweep covers: the four flat LogGP
# personalities plus the routed topologies (where the train self-
# disables — the sweep pins that disabling is what happens, not drift).
FABRICS = {
    "generic_rdma": generic_rdma,
    "quadrics_like": quadrics_like,
    "seastar_portals": seastar_portals,
    "infiniband_like": infiniband_like,
    "torus": lambda: torus_network((2, 2, 2)),
    "torus-adaptive": lambda: torus_network((2, 2, 2), adaptive=True),
    "fattree": lambda: fattree_network(),
}


def _with_train(enabled, workload):
    prev = RmaEngine.train_enabled
    RmaEngine.train_enabled = enabled
    try:
        return workload()
    finally:
        RmaEngine.train_enabled = prev


def _with_nexus(enabled, workload):
    prev = CollectiveNexus.enabled
    CollectiveNexus.enabled = enabled
    try:
        return workload()
    finally:
        CollectiveNexus.enabled = prev


class TestTrainParityAcrossFabrics:
    @pytest.mark.parametrize("fabric", sorted(FABRICS))
    def test_halo_bit_identical(self, fabric):
        def run():
            return halo_exchange_time(
                "strawman", n_ranks=8, halo_bytes=4096, iterations=4,
                network=FABRICS[fabric](),
            )
        assert _with_train(True, run) == _with_train(False, run)

    @pytest.mark.parametrize("fabric", sorted(FABRICS))
    def test_fig2_bit_identical(self, fabric):
        def run():
            return fig2_attribute_cost(
                "remote_complete", 16384, puts_per_origin=10,
                network=FABRICS[fabric](),
            )
        assert _with_train(True, run) == _with_train(False, run)


class TestTrainSelfDisables:
    """The gates: tracing, faults, and mixed attributes must leave the
    simulated result identical because the train turns itself off (or
    replays exactly) rather than approximating."""

    def test_under_tracing_times_and_traces_identical(self):
        def run():
            sink = []
            sim_us = fig2_attribute_cost(
                "none", 16384, puts_per_origin=10, trace=True,
                world_out=sink,
            )
            world = sink[0]
            records = [
                (r.time, r.category, r.kind, r.rank,
                 tuple(sorted(r.detail.items())), r.seq)
                for r in world.tracer
            ]
            return sim_us, records
        assert _with_train(True, run) == _with_train(False, run)

    def test_with_nonempty_fault_plan(self):
        def run():
            return fig2_attribute_cost(
                "remote_complete", 16384, puts_per_origin=10,
                fault_plan=FaultPlan().drop(0.05), seed=11,
            )
        assert _with_train(True, run) == _with_train(False, run)

    def test_mixed_attribute_stream(self):
        # Alternating attribute sets break op-window uniformity; the
        # train must pass those windows to the per-op path untouched.
        from repro.datatypes import BYTE
        from repro.runtime import World

        def run():
            world = World(n_ranks=2, network=seastar_portals(), seed=0)

            def program(ctx):
                alloc, tmems = yield from ctx.rma.expose_collective(1 << 16)
                src = ctx.mem.space.alloc(1 << 12)
                yield from ctx.comm.barrier()
                if ctx.rank == 0:
                    for i in range(12):
                        yield from ctx.rma.put(
                            src, 0, 1 << 12, BYTE,
                            tmems[1], 0, 1 << 12, BYTE,
                            ordering=bool(i % 2),
                            remote_completion=bool(i % 3 == 0),
                        )
                    yield from ctx.rma.complete()
                yield from ctx.comm.barrier()
                return ctx.sim.now

            return world.run(program)
        assert _with_train(True, run) == _with_train(False, run)


class TestTrainEngages:
    def test_fig2_issues_trains(self):
        sink = []
        fig2_attribute_cost("none", 16384, puts_per_origin=10,
                            world_out=sink)
        world = sink[0]
        trains = sum(ctx.rma.engine.stats["train_ops"]
                     for ctx in world.contexts.values())
        assert trains > 0

    def test_no_trains_when_disabled(self):
        def run():
            sink = []
            fig2_attribute_cost("none", 16384, puts_per_origin=10,
                                world_out=sink)
            return sum(ctx.rma.engine.stats["train_ops"]
                       for ctx in sink[0].contexts.values())
        assert _with_train(False, run) == 0


class TestNexusParity:
    def test_halo_bit_identical(self):
        def run():
            return halo_exchange_time("strawman", n_ranks=8,
                                      halo_bytes=8192, iterations=10)
        assert _with_nexus(True, run) == _with_nexus(False, run)

    def test_halo_non_power_of_two_ranks(self):
        # Dissemination rounds with a non-power-of-2 world hit the
        # wrap-around partner pattern; the analytic replay must match.
        def run():
            return halo_exchange_time("strawman", n_ranks=6,
                                      halo_bytes=2048, iterations=6)
        assert _with_nexus(True, run) == _with_nexus(False, run)

    def test_fig2_bit_identical(self):
        def run():
            return fig2_attribute_cost("ordering", 16384,
                                       puts_per_origin=10)
        assert _with_nexus(True, run) == _with_nexus(False, run)

    def test_nexus_commits_on_halo(self):
        from repro.bench.workloads import halo_exchange_time as halo

        sink = []
        # Same shape as the perf harness halo; steady-state windows
        # close analytically (commits), the startup windows rescue.
        from repro.runtime import World
        from repro.datatypes import BYTE

        world = World(n_ranks=8, network=seastar_portals(), seed=0)

        def program(ctx):
            alloc, tmems = yield from ctx.rma.expose_collective(2 * 8192)
            src = ctx.mem.space.alloc(8192, fill=ctx.rank)
            yield from ctx.comm.barrier()
            right = (ctx.rank + 1) % ctx.size
            left = (ctx.rank - 1) % ctx.size
            for _ in range(10):
                yield from ctx.rma.put(src, 0, 8192, BYTE,
                                       tmems[right], 0, 8192, BYTE,
                                       blocking=True)
                yield from ctx.rma.put(src, 0, 8192, BYTE,
                                       tmems[left], 8192, 8192, BYTE,
                                       blocking=True)
                yield from ctx.rma.complete_collective(ctx.comm)
            yield from ctx.comm.barrier()

        world.run(program)
        assert world.nexus.commits > 0

    def test_rescue_path_bit_identical_and_taken(self):
        # Small halo payloads put a rank's next put after a parked
        # peer's virtual flush arrival — the synchronous note_reserve
        # rescue (and its backdated replay drain) must fire and still
        # reproduce the naive timeline exactly.
        from repro.datatypes import BYTE
        from repro.runtime import World

        def run():
            world = World(n_ranks=8, network=seastar_portals(), seed=0)

            def program(ctx):
                alloc, tmems = yield from ctx.rma.expose_collective(2 * 1024)
                src = ctx.mem.space.alloc(1024, fill=ctx.rank)
                yield from ctx.comm.barrier()
                right = (ctx.rank + 1) % ctx.size
                left = (ctx.rank - 1) % ctx.size
                for _ in range(6):
                    yield from ctx.rma.put(src, 0, 1024, BYTE,
                                           tmems[right], 0, 1024, BYTE,
                                           blocking=True)
                    yield from ctx.rma.put(src, 0, 1024, BYTE,
                                           tmems[left], 1024, 1024, BYTE,
                                           blocking=True)
                    yield from ctx.rma.complete_collective(ctx.comm)
                yield from ctx.comm.barrier()
                return ctx.sim.now

            out = world.run(program)
            return out, world.nexus.rescues

        on_out, on_rescues = _with_nexus(True, run)
        off_out, _ = _with_nexus(False, run)
        assert on_out == off_out
        assert on_rescues > 0

    def test_nexus_declines_when_burst_disabled(self):
        # The nexus replays burst-path analytics; with the burst layer
        # off it must decline (commits stay 0) and times still match.
        def run():
            return halo_exchange_time("strawman", n_ranks=4,
                                      halo_bytes=2048, iterations=4)
        prev = Nic.burst_enabled
        Nic.burst_enabled = False
        try:
            no_burst = _with_nexus(True, run)
        finally:
            Nic.burst_enabled = prev
        assert no_burst == _with_nexus(False, run)
