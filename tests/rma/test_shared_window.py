"""Shared-memory windows: co-located load/store bypasses the NIC."""

import numpy as np
import pytest

from repro.datatypes import BYTE
from repro.machine import MachineConfig, generic_cluster, nec_sx9
from repro.rma.engine import RmaEngine
from repro.runtime import World


def two_by_two():
    return MachineConfig(n_nodes=2, ranks_per_node=2)


class TestSharedEligibility:
    def test_expose_marks_shared_on_coherent_node(self):
        w = World(machine=generic_cluster(1))

        def program(ctx):
            alloc, tmems = yield from ctx.rma.expose_collective(
                64, shared=True)
            return tmems[0].shared

        assert w.run(program) == [True]

    def test_noncoherent_owner_degrades_to_plain_exposure(self):
        w = World(machine=nec_sx9(n_nodes=1, ranks_per_node=2))

        def program(ctx):
            alloc, tmems = yield from ctx.rma.expose_collective(
                64, shared=True)
            return tmems[ctx.rank].shared

        assert w.run(program) == [False, False]

    def test_plain_exposure_not_shared(self):
        w = World(machine=generic_cluster(1))

        def program(ctx):
            alloc, tmems = yield from ctx.rma.expose_collective(64)
            return tmems[0].shared

        assert w.run(program) == [False]


class TestSharedDataMovement:
    def _put_get_program(self, ctx):
        alloc, tmems = yield from ctx.rma.expose_collective(64, shared=True)
        nic = ctx.rma.engine.nic
        delta = None
        if ctx.rank == 0:
            before = nic.packets_sent
            src = ctx.mem.space.alloc(16)
            ctx.mem.store(src, 0, np.arange(16, dtype=np.uint8))
            yield from ctx.rma.put(src, 0, 16, BYTE, tmems[1], 0, 16, BYTE,
                                   blocking=True, remote_completion=True)
            back = ctx.mem.space.alloc(16)
            yield from ctx.rma.get(back, 0, 16, BYTE, tmems[1], 0, 16, BYTE,
                                   blocking=True)
            got = ctx.mem.load(back, 0, 16).tolist()
            delta = nic.packets_sent - before
        else:
            got = None
        yield from ctx.comm.barrier()
        mine = ctx.mem.load(alloc, 0, 16).tolist()
        return got, mine, delta

    def test_colocated_put_get_moves_no_packets(self):
        w = World(machine=two_by_two())
        out = w.run(self._put_get_program)
        assert out[0][0] == list(range(16))
        assert out[1][1] == list(range(16))
        # The whole exchange stayed on-node as load/store: rank 0's NIC
        # injected nothing between issue and blocking completion.
        assert out[0][2] == 0
        eng = w.contexts[0].rma.engine
        assert eng.stats["shm_ops"] == 2
        assert eng.stats["shm_bytes"] == 32
        assert eng.stats["puts"] == 1 and eng.stats["gets"] == 1

    def test_off_node_traffic_keeps_remote_path(self):
        def program(ctx):
            alloc, tmems = yield from ctx.rma.expose_collective(
                64, shared=True)
            if ctx.rank == 0:
                src = ctx.mem.space.alloc(16)
                ctx.mem.store(src, 0, np.full(16, 7, dtype=np.uint8))
                yield from ctx.rma.put(src, 0, 16, BYTE, tmems[2], 0, 16,
                                       BYTE, blocking=True,
                                       remote_completion=True)
            yield from ctx.comm.barrier()
            return ctx.mem.load(alloc, 0, 16).tolist()

        w = World(machine=two_by_two())
        out = w.run(program)
        assert out[2] == [7] * 16
        eng = w.contexts[0].rma.engine
        assert eng.stats["shm_ops"] == 0
        assert w.nics[0].packets_sent > 0

    def test_accumulate_getacc_rmw_on_shared_window(self):
        def program(ctx):
            from repro.datatypes import INT64

            alloc, tmems = yield from ctx.rma.expose_collective(
                64, shared=True)
            ctx.mem.store(alloc, 0,
                          np.array([10], dtype=np.int64).view(np.uint8))
            yield from ctx.comm.barrier()
            nic = ctx.rma.engine.nic
            results = {}
            if ctx.rank == 0:
                before = nic.packets_sent
                src = ctx.mem.space.alloc(8)
                ctx.mem.store(src, 0,
                              np.array([5], dtype=np.int64).view(np.uint8))
                yield from ctx.rma.accumulate(
                    src, 0, 1, INT64, tmems[1], 0, 1, INT64, op="sum",
                    blocking=True, remote_completion=True)
                old = yield from ctx.rma.fetch_and_add(
                    tmems[1], 0, "int64", 3)
                results["fadd_old"] = int(old)
                fetch = ctx.mem.space.alloc(8)
                ctx.mem.store(fetch, 0,
                              np.array([0], dtype=np.int64).view(np.uint8))
                yield from ctx.rma.get_accumulate(
                    fetch, 0, 1, INT64, tmems[1], 0, 1, INT64, op="sum")
                results["getacc_old"] = int(
                    ctx.mem.load(fetch, 0, 8).view(np.int64)[0])
                results["pkt_delta"] = nic.packets_sent - before
            yield from ctx.comm.barrier()
            ctx.mem.fence()
            results["final"] = int(ctx.mem.load(alloc, 0, 8).view(np.int64)[0])
            return results

        w = World(machine=MachineConfig(n_nodes=1, ranks_per_node=2))
        out = w.run(program)
        assert out[0]["fadd_old"] == 15          # 10 + 5
        assert out[0]["getacc_old"] == 18        # after fetch_add(3)
        assert out[1]["final"] == 18             # +0 from the getacc
        assert out[0]["pkt_delta"] == 0

    def test_ordering_after_remote_traffic_falls_back(self):
        """A shared op that must order behind sequenced remote traffic
        takes the remote path (it owns no sequence number)."""

        def program(ctx):
            alloc, tmems = yield from ctx.rma.expose_collective(
                64, shared=False)   # plain window: remote path first
            shared_alloc, shared_tmems = yield from ctx.rma.expose_collective(
                64, shared=True)
            if ctx.rank == 0:
                src = ctx.mem.space.alloc(8)
                yield from ctx.rma.put(src, 0, 8, BYTE, tmems[1], 0, 8, BYTE)
                yield from ctx.rma.put(src, 0, 8, BYTE, shared_tmems[1],
                                       8, 8, BYTE, ordering=True)
                yield from ctx.rma.complete(1)
            yield from ctx.comm.barrier()

        w = World(machine=MachineConfig(n_nodes=1, ranks_per_node=2))
        w.run(program)
        eng = w.contexts[0].rma.engine
        # the ordered shared put fell back: both ops went remote
        assert eng.stats["shm_ops"] == 0

    def test_shared_default_forces_flavor_for_plain_windows(self, monkeypatch):
        monkeypatch.setattr(RmaEngine, "shared_default", True)
        w = World(machine=two_by_two())
        out = w.run(self._put_get_program)
        assert out[0][0] == list(range(16))
        assert w.contexts[0].rma.engine.stats["shm_ops"] == 2


class TestRemotePathBitIdentity:
    def _remote_program(self, ctx):
        alloc, tmems = yield from ctx.rma.expose_collective(256)
        t0 = ctx.sim.now
        if ctx.rank == 0:
            src = ctx.mem.space.alloc(128)
            for i in range(4):
                yield from ctx.rma.put(src, 0, 128, BYTE, tmems[1], 0, 128,
                                       BYTE)
            yield from ctx.rma.complete(1)
        yield from ctx.comm.barrier()
        return ctx.sim.now - t0

    def test_one_rank_per_node_timestamps_unchanged(self, monkeypatch):
        """``shared_default`` on a machine with no co-located pairs must
        leave every simulated timestamp bit-identical — the eligibility
        gate fires before any state is touched."""
        base = World(n_ranks=2).run(self._remote_program)
        monkeypatch.setattr(RmaEngine, "shared_default", True)
        on = World(n_ranks=2).run(self._remote_program)
        assert base == on

    def test_off_node_timestamps_unchanged_with_colocated_pairs(self,
                                                                monkeypatch):
        """On a machine *with* co-located pairs, flipping the global
        shared flavor on must leave purely off-node traffic on exactly
        the per-packet/train timeline (descriptors are unchanged — only
        the engine-side toggle differs, like ``perf --shared-windows``)."""

        def body(ctx):
            alloc, tmems = yield from ctx.rma.expose_collective(256)
            if ctx.rank == 0:
                src = ctx.mem.space.alloc(128)
                for _ in range(4):
                    yield from ctx.rma.put(src, 0, 128, BYTE, tmems[2],
                                           0, 128, BYTE)
                yield from ctx.rma.complete(2)
            yield from ctx.comm.barrier()
            return ctx.sim.now

        a = World(machine=two_by_two()).run(body)
        monkeypatch.setattr(RmaEngine, "shared_default", True)
        b = World(machine=two_by_two()).run(body)
        assert a == b


class TestSkipFenceMutation:
    def test_skipped_train_flush_reads_the_past(self):
        """Directed reproducer for the planted ``shm_skip_fence`` bug:
        an off-node op-train put has analytically arrived at rank 1;
        a co-located shared get must flush it first.  The mutation
        skips the flush and reads stale zeros."""

        def program(ctx):
            alloc, tmems = yield from ctx.rma.expose_collective(
                64, shared=True)
            if ctx.rank == 2:
                src = ctx.mem.space.alloc(16)
                ctx.mem.store(src, 0, np.full(16, 9, dtype=np.uint8))
                yield from ctx.rma.put(src, 0, 16, BYTE, tmems[1], 0, 16,
                                       BYTE)
            got = None
            if ctx.rank == 0:
                # long after the train's analytic arrival at rank 1
                yield ctx.sim.timeout(50.0)
                back = ctx.mem.space.alloc(16)
                yield from ctx.rma.get(back, 0, 16, BYTE, tmems[1], 0, 16,
                                       BYTE, blocking=True)
                got = ctx.mem.load(back, 0, 16).tolist()
            else:
                # keep the fabric quiet: a barrier packet delivered to
                # rank 1 would materialize the train for free
                yield ctx.sim.timeout(100.0)
            yield from ctx.comm.barrier()
            return got

        def run(mutations):
            w = World(machine=two_by_two())
            for ctx in w.contexts.values():
                ctx.rma.engine.conformance_mutations = mutations
            return w.run(program)[0]

        clean = run(frozenset())
        assert clean == [9] * 16
        mutated = run(frozenset({"shm_skip_fence"}))
        assert mutated == [0] * 16
