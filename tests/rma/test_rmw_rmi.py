"""Tests for RMW operations (§V) and the RMI xfer extension (§IV)."""

import pytest

from repro.machine import cray_xt5_catamount
from repro.network import infiniband_like, quadrics_like, seastar_portals
from repro.rma import RmaError
from repro.runtime import World


RMW_NETWORKS = {
    "hw-atomics": quadrics_like,       # small_atomics=True
    "sw-serializer": seastar_portals,  # small_atomics=False -> serializer
}


class TestFetchAndAdd:
    @pytest.mark.parametrize("netname", sorted(RMW_NETWORKS))
    def test_concurrent_increments_all_land(self, netname):
        def program(ctx):
            alloc, tmems = yield from ctx.rma.expose_collective(16)
            olds = []
            if ctx.rank != 0:
                for _ in range(10):
                    old = yield from ctx.rma.fetch_and_add(
                        tmems[0], 0, "int64", 1
                    )
                    olds.append(int(old))
            yield from ctx.comm.barrier()
            if ctx.rank == 0:
                return int(ctx.mem.space.view(alloc, "int64")[0])
            return olds

        out = World(n_ranks=5, network=RMW_NETWORKS[netname]()).run(program)
        assert out[0] == 40
        # every fetched old value is unique across all ranks (atomicity)
        seen = [v for r in range(1, 5) for v in out[r]]
        assert sorted(seen) == list(range(40))

    def test_fetch_and_add_float(self):
        def program(ctx):
            alloc, tmems = yield from ctx.rma.expose_collective(8)
            if ctx.rank == 1:
                old = yield from ctx.rma.fetch_and_add(
                    tmems[0], 0, "float64", 2.5
                )
                assert old == 0.0
            yield from ctx.comm.barrier()
            if ctx.rank == 0:
                return float(ctx.mem.space.view(alloc, "float64")[0])

        assert World(n_ranks=2).run(program)[0] == 2.5


class TestCompareAndSwap:
    @pytest.mark.parametrize("netname", sorted(RMW_NETWORKS))
    def test_exactly_one_winner(self, netname):
        """All ranks CAS 0 -> their rank; exactly one succeeds."""

        def program(ctx):
            alloc, tmems = yield from ctx.rma.expose_collective(8)
            old = None
            if ctx.rank != 0:
                old = yield from ctx.rma.compare_and_swap(
                    tmems[0], 0, "int64", compare=0, value=ctx.rank
                )
            yield from ctx.comm.barrier()
            if ctx.rank == 0:
                return int(ctx.mem.space.view(alloc, "int64")[0])
            return int(old)

        out = World(n_ranks=4, network=RMW_NETWORKS[netname]()).run(program)
        winner = out[0]
        assert winner in (1, 2, 3)
        winners = [r for r in (1, 2, 3) if out[r] == 0]
        assert len(winners) == 1
        assert winners[0] == winner

    def test_failed_cas_leaves_value(self):
        def program(ctx):
            alloc, tmems = yield from ctx.rma.expose_collective(8)
            if ctx.rank == 0:
                ctx.mem.space.view(alloc, "int64")[0] = 42
            yield from ctx.comm.barrier()
            if ctx.rank == 1:
                old = yield from ctx.rma.compare_and_swap(
                    tmems[0], 0, "int64", compare=0, value=99
                )
                assert int(old) == 42  # reports current value
            yield from ctx.comm.barrier()
            if ctx.rank == 0:
                return int(ctx.mem.space.view(alloc, "int64")[0])

        assert World(n_ranks=2).run(program)[0] == 42

    def test_cas_requires_compare(self):
        def program(ctx):
            alloc, tmems = yield from ctx.rma.expose_collective(8)
            if ctx.rank == 1:
                yield from ctx.rma.engine.issue_rmw(
                    tmems[0], 0, "int64", "cas", 1
                )

        with pytest.raises(RmaError, match="compare"):
            World(n_ranks=2).run(program)


class TestSwap:
    def test_swap_returns_old(self):
        def program(ctx):
            alloc, tmems = yield from ctx.rma.expose_collective(8)
            if ctx.rank == 0:
                ctx.mem.space.view(alloc, "int32")[0] = 5
            yield from ctx.comm.barrier()
            if ctx.rank == 1:
                old = yield from ctx.rma.swap(tmems[0], 0, "int32", 9)
                assert int(old) == 5
            yield from ctx.comm.barrier()
            if ctx.rank == 0:
                return int(ctx.mem.space.view(alloc, "int32")[0])

        assert World(n_ranks=2).run(program)[0] == 9


class TestRmwOnLockSerializer:
    def test_rmw_through_coarse_lock(self):
        """On Catamount + Portals (no hw atomics, no threads) RMW must
        route through the process-level lock and still be atomic."""

        def program(ctx):
            alloc, tmems = yield from ctx.rma.expose_collective(8)
            if ctx.rank != 0:
                for _ in range(5):
                    yield from ctx.rma.fetch_and_add(tmems[0], 0, "int64", 1)
            yield from ctx.comm.barrier()
            if ctx.rank == 0:
                return int(ctx.mem.space.view(alloc, "int64")[0])

        w = World(machine=cray_xt5_catamount(4), network=seastar_portals(),
                  serializer="lock")
        assert w.run(program)[0] == 15

    def test_bad_rmw_op_rejected(self):
        def program(ctx):
            alloc, tmems = yield from ctx.rma.expose_collective(8)
            if ctx.rank == 1:
                yield from ctx.rma.engine.issue_rmw(
                    tmems[0], 0, "int64", "xor", 1
                )

        with pytest.raises(RmaError, match="unknown RMW"):
            World(n_ranks=2).run(program)


class TestRmi:
    def test_invoke_registered_method(self):
        def program(ctx):
            if ctx.rank == 0:
                state = {"hits": 0}

                def bump(amount):
                    state["hits"] += amount
                    return state["hits"]

                ctx.rma.register_rmi("bump", bump)
            yield from ctx.comm.barrier()
            result = None
            if ctx.rank == 1:
                r1 = yield from ctx.rma.invoke(0, "bump", 5)
                r2 = yield from ctx.rma.invoke(0, "bump", 2)
                result = (r1, r2)
            yield from ctx.comm.barrier()
            return result

        out = World(n_ranks=2).run(program)
        assert out[1] == (5, 7)

    def test_invoke_via_xfer_optype(self):
        """The paper motivates the optype field by future expansion such
        as remote method invocation; xfer('rmi') demonstrates it."""

        def program(ctx):
            if ctx.rank == 0:
                ctx.rma.register_rmi("double", lambda x: 2 * x)
            yield from ctx.comm.barrier()
            result = None
            if ctx.rank == 1:
                result = yield from ctx.rma.xfer(
                    "rmi", target_rank=0, rmi_name="double", rmi_args=(21,)
                )
            yield from ctx.comm.barrier()
            return result

        assert World(n_ranks=2).run(program)[1] == 42

    def test_unregistered_rmi_errors(self):
        def program(ctx):
            yield from ctx.comm.barrier()
            if ctx.rank == 1:
                yield from ctx.rma.invoke(0, "missing")
            yield from ctx.comm.barrier()

        with pytest.raises(RmaError, match="no RMI handler"):
            World(n_ranks=2).run(program)

    def test_duplicate_rmi_registration_rejected(self):
        def program(ctx):
            ctx.rma.register_rmi("f", lambda: 1)
            ctx.rma.register_rmi("f", lambda: 2)
            return None
            yield  # pragma: no cover

        with pytest.raises(RmaError, match="already registered"):
            World(n_ranks=1).run(program)

    def test_rmi_unavailable_without_am_or_threads(self):
        """Catamount + Portals: neither AMs nor threads — the engine
        refuses RMI (the paper notes defining it is 'not trivial' on
        such architectures)."""

        def program(ctx):
            yield from ctx.comm.barrier()
            if ctx.rank == 1:
                yield from ctx.rma.invoke(0, "anything")

        w = World(machine=cray_xt5_catamount(2), network=seastar_portals(),
                  serializer="lock")
        with pytest.raises(RmaError, match="RMI requires"):
            w.run(program)
