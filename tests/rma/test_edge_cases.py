"""Edge-case tests for the RMA engine."""

import numpy as np
import pytest

from repro.datatypes import BYTE, FLOAT64
from repro.network import NetworkConfig, generic_rdma
from repro.rma import RmaAttrs
from repro.runtime import World


class TestSelfRma:
    def test_put_get_to_own_rank(self):
        """Loopback RMA (a rank targeting its own exposed memory) goes
        through the same protocol path and works."""

        def program(ctx):
            alloc, tmems = yield from ctx.rma.expose_collective(64)
            src = ctx.mem.space.alloc(8, fill=ctx.rank + 1)
            yield from ctx.rma.put(src, 0, 8, BYTE, tmems[ctx.rank], 0, 8,
                                   BYTE, blocking=True,
                                   remote_completion=True)
            dst = ctx.mem.space.alloc(8)
            yield from ctx.rma.get(dst, 0, 8, BYTE, tmems[ctx.rank], 0, 8,
                                   BYTE, blocking=True)
            return ctx.mem.load(dst, 0, 8).tolist()

        out = World(n_ranks=2).run(program)
        assert out == [[1] * 8, [2] * 8]

    def test_self_rmw(self):
        def program(ctx):
            alloc, tmems = yield from ctx.rma.expose_collective(8)
            old = yield from ctx.rma.fetch_and_add(tmems[ctx.rank], 0,
                                                   "int64", 7)
            return (int(old), int(ctx.mem.space.view(alloc, "int64")[0]))

        assert World(n_ranks=1).run(program) == [(0, 7)]


class TestMtuBoundaries:
    @pytest.mark.parametrize("size_rel", [-1, 0, 1])
    def test_payload_around_mtu(self, size_rel):
        mtu = 256
        size = mtu + size_rel

        def program(ctx):
            alloc, tmems = yield from ctx.rma.expose_collective(2048)
            result = None
            if ctx.rank == 1:
                src = ctx.mem.space.alloc(size)
                ctx.mem.store(src, 0, (np.arange(size) % 251).astype(np.uint8))
                yield from ctx.rma.put(src, 0, size, BYTE, tmems[0], 0, size,
                                       BYTE, blocking=True,
                                       remote_completion=True)
            yield from ctx.comm.barrier()
            if ctx.rank == 0:
                got = ctx.mem.load(alloc, 0, size)
                result = bool((got == (np.arange(size) % 251)).all())
            return result

        net = generic_rdma().with_(mtu=mtu)
        assert World(n_ranks=2, network=net).run(program)[0] is True

    def test_tiny_mtu_many_fragments(self):
        def program(ctx):
            alloc, tmems = yield from ctx.rma.expose_collective(1024)
            result = None
            if ctx.rank == 1:
                src = ctx.mem.space.alloc(1000)
                ctx.mem.store(src, 0, (np.arange(1000) % 251).astype(np.uint8))
                yield from ctx.rma.put(src, 0, 1000, BYTE, tmems[0], 0, 1000,
                                       BYTE, blocking=True,
                                       remote_completion=True)
            yield from ctx.comm.barrier()
            if ctx.rank == 0:
                got = ctx.mem.load(alloc, 0, 1000)
                result = bool((got == (np.arange(1000) % 251)).all())
            return result

        net = generic_rdma().with_(mtu=8)
        assert World(n_ranks=2, network=net).run(program)[0] is True

    def test_mtu_validation(self):
        with pytest.raises(ValueError, match="mtu"):
            NetworkConfig(mtu=4)


class TestStrictModeDebugging:
    def test_strict_default_prevents_torn_overlap(self):
        """The paper's debug story: turning on the most stringent rules
        turns racy overlapping puts into serialized ones."""

        def writers(strict):
            def program(ctx):
                alloc, tmems = yield from ctx.rma.expose_collective(20_000)
                if strict:
                    ctx.rma.set_default_attrs(RmaAttrs.strict(), ctx.comm)
                result = None
                if ctx.rank != 0:
                    src = ctx.mem.space.alloc(20_000, fill=ctx.rank)
                    yield from ctx.rma.put(src, 0, 20_000, BYTE, tmems[0], 0,
                                           20_000, BYTE,
                                           **({} if strict else
                                              {"blocking": True,
                                               "remote_completion": True}))
                yield from ctx.rma.complete_collective(ctx.comm)
                if ctx.rank == 0:
                    result = len(np.unique(ctx.mem.load(alloc, 0, 20_000)))
                return result
            return program

        from repro.network import quadrics_like

        torn_seed = None
        for seed in range(20):
            w = World(n_ranks=3, network=quadrics_like(), seed=seed)
            if w.run(writers(strict=False))[0] > 1:
                torn_seed = seed
                break
        assert torn_seed is not None, "baseline never tore; test is vacuous"
        w = World(n_ranks=3, network=quadrics_like(), seed=torn_seed)
        assert w.run(writers(strict=True))[0] == 1


class TestMultipleExposures:
    def test_several_exposures_of_distinct_allocs(self):
        def program(ctx):
            a1 = ctx.mem.space.alloc(32)
            a2 = ctx.mem.space.alloc(32)
            t1 = ctx.rma.expose(a1)
            t2 = ctx.rma.expose(a2)
            both = yield from ctx.comm.allgather((t1, t2))
            if ctx.rank == 1:
                src = ctx.mem.space.alloc(8, fill=9)
                yield from ctx.rma.put(src, 0, 8, BYTE, both[0][1], 0, 8,
                                       BYTE, blocking=True,
                                       remote_completion=True)
            yield from ctx.comm.barrier()
            if ctx.rank == 0:
                return (ctx.mem.load(a1, 0, 8).tolist(),
                        ctx.mem.load(a2, 0, 8).tolist())

        out = World(n_ranks=2).run(program)
        assert out[0] == ([0] * 8, [9] * 8)

    def test_same_alloc_exposed_twice_distinct_ids(self):
        def program(ctx):
            a = ctx.mem.space.alloc(16)
            t1 = ctx.rma.expose(a)
            t2 = ctx.rma.expose(a)
            assert t1.mem_id != t2.mem_id
            ctx.rma.withdraw(t1)
            # t2 still live after withdrawing t1
            tm = yield from ctx.comm.bcast(t2 if ctx.rank == 0 else None)
            if ctx.rank == 1:
                src = ctx.mem.space.alloc(4, fill=3)
                yield from ctx.rma.put(src, 0, 4, BYTE, tm, 0, 4, BYTE,
                                       blocking=True, remote_completion=True)
            yield from ctx.comm.barrier()
            if ctx.rank == 0:
                return ctx.mem.load(a, 0, 4).tolist()

        assert World(n_ranks=2).run(program)[0] == [3] * 4


class TestRmwTypes:
    @pytest.mark.parametrize("np_elem,operand,expect", [
        ("int32", 3, 3),
        ("int64", -2, -2),
        ("float64", 1.5, 1.5),
        ("uint16", 9, 9),
    ])
    def test_fetch_add_across_types(self, np_elem, operand, expect):
        def program(ctx):
            alloc, tmems = yield from ctx.rma.expose_collective(16)
            if ctx.rank == 1:
                yield from ctx.rma.fetch_and_add(tmems[0], 0, np_elem,
                                                 operand)
            yield from ctx.comm.barrier()
            if ctx.rank == 0:
                return ctx.mem.space.view(alloc, np_elem)[0].item()

        assert World(n_ranks=2).run(program)[0] == expect

    def test_float_cas(self):
        def program(ctx):
            alloc, tmems = yield from ctx.rma.expose_collective(8)
            if ctx.rank == 0:
                ctx.mem.space.view(alloc, "float64")[0] = 2.5
            yield from ctx.comm.barrier()
            if ctx.rank == 1:
                old = yield from ctx.rma.compare_and_swap(
                    tmems[0], 0, "float64", compare=2.5, value=7.25
                )
                assert float(old) == 2.5
            yield from ctx.comm.barrier()
            if ctx.rank == 0:
                return float(ctx.mem.space.view(alloc, "float64")[0])

        assert World(n_ranks=2).run(program)[0] == 7.25


class TestCompletionCorners:
    def test_complete_twice_is_idempotent(self):
        def program(ctx):
            alloc, tmems = yield from ctx.rma.expose_collective(64)
            if ctx.rank == 1:
                src = ctx.mem.space.alloc(8)
                yield from ctx.rma.put(src, 0, 8, BYTE, tmems[0], 0, 8, BYTE,
                                       blocking=True)
                yield from ctx.rma.complete(ctx.comm, 0)
                t0 = ctx.sim.now
                yield from ctx.rma.complete(ctx.comm, 0)  # nothing pending
                return ctx.sim.now - t0
            yield from ctx.comm.barrier()

        def wrapped(ctx):
            r = yield from program(ctx)
            if ctx.rank == 1:
                yield from ctx.comm.barrier()
            return r

        assert World(n_ranks=2).run(wrapped)[1] < 1.0

    def test_interleaved_order_and_complete(self):
        def program(ctx):
            alloc, tmems = yield from ctx.rma.expose_collective(64)
            result = None
            if ctx.rank == 1:
                a = ctx.mem.space.alloc(8, fill=1)
                b = ctx.mem.space.alloc(8, fill=2)
                c = ctx.mem.space.alloc(8, fill=3)
                yield from ctx.rma.put(a, 0, 8, BYTE, tmems[0], 0, 8, BYTE)
                yield from ctx.rma.order(ctx.comm, 0)
                yield from ctx.rma.put(b, 0, 8, BYTE, tmems[0], 0, 8, BYTE)
                yield from ctx.rma.complete(ctx.comm, 0)
                yield from ctx.rma.put(c, 0, 8, BYTE, tmems[0], 0, 8, BYTE,
                                       ordering=True)
                yield from ctx.rma.complete(ctx.comm, 0)
                yield from ctx.comm.send("done", dest=0)
                yield from ctx.comm.barrier()
            elif ctx.rank == 0:
                yield from ctx.comm.recv(source=1)
                result = ctx.mem.load(alloc, 0, 8).tolist()
                yield from ctx.comm.barrier()
            return result

        from repro.network import quadrics_like

        for seed in range(6):
            out = World(n_ranks=2, network=quadrics_like(), seed=seed).run(
                program
            )
            assert out[0] == [3] * 8, f"seed {seed}"
