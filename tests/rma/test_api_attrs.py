"""Tests for attribute resolution and the xfer frontend (§IV req. 5)."""

import pytest

from repro.datatypes import BYTE
from repro.rma import RmaAttrs, RmaError
from repro.runtime import World


class TestRmaAttrs:
    def test_default_is_none(self):
        a = RmaAttrs()
        assert not (a.ordering or a.remote_completion or a.atomicity
                    or a.blocking)
        assert str(a) == "none"

    def test_strict_enables_everything(self):
        a = RmaAttrs.strict()
        assert a.ordering and a.remote_completion and a.atomicity and a.blocking
        assert str(a) == "ordering+remote_completion+atomicity+blocking"

    def test_with_override(self):
        a = RmaAttrs().with_(ordering=True)
        assert a.ordering and not a.atomicity

    def test_merged_prefers_override(self):
        default = RmaAttrs.strict()
        assert default.merged(None) is default
        override = RmaAttrs()
        assert default.merged(override) is override

    def test_frozen(self):
        with pytest.raises(Exception):
            RmaAttrs().ordering = True  # type: ignore[misc]


class TestAttrResolution:
    def test_per_comm_default_applies(self):
        """Setting strict() as the comm default makes plain puts blocking
        + remotely complete — the paper's debug mode."""

        def program(ctx):
            alloc, tmems = yield from ctx.rma.expose_collective(64)
            result = None
            if ctx.rank == 1:
                ctx.rma.set_default_attrs(RmaAttrs.strict(), ctx.comm)
                src = ctx.mem.space.alloc(8, fill=4)
                req = yield from ctx.rma.put(src, 0, 8, BYTE, tmems[0], 0, 8,
                                             BYTE)
                # strict default => blocking: already complete on return
                result = req.complete
            yield from ctx.comm.barrier()
            if ctx.rank == 0:
                return ctx.mem.load(alloc, 0, 8).tolist()
            return result

        out = World(n_ranks=2).run(program)
        assert out[1] is True
        assert out[0] == [4] * 8

    def test_kwargs_override_default(self):
        def program(ctx):
            alloc, tmems = yield from ctx.rma.expose_collective(64)
            result = None
            if ctx.rank == 1:
                ctx.rma.set_default_attrs(RmaAttrs.strict(), ctx.comm)
                src = ctx.mem.space.alloc(8)
                # explicitly turn blocking off, keep the rest
                req = yield from ctx.rma.put(
                    src, 0, 8, BYTE, tmems[0], 0, 8, BYTE, blocking=False
                )
                result = req.complete
                yield from req.wait()
            yield from ctx.comm.barrier()
            return result

        out = World(n_ranks=2).run(program)
        assert out[1] is False  # not blocking anymore

    def test_attrs_object_and_kwargs_conflict(self):
        def program(ctx):
            alloc, tmems = yield from ctx.rma.expose_collective(64)
            src = ctx.mem.space.alloc(8)
            yield from ctx.rma.put(src, 0, 8, BYTE, tmems[0], 0, 8, BYTE,
                                   attrs=RmaAttrs(), ordering=True)

        with pytest.raises(RmaError, match="not both"):
            World(n_ranks=1).run(program)

    def test_unknown_attribute_kwarg(self):
        def program(ctx):
            alloc, tmems = yield from ctx.rma.expose_collective(64)
            src = ctx.mem.space.alloc(8)
            yield from ctx.rma.put(src, 0, 8, BYTE, tmems[0], 0, 8, BYTE,
                                   consistency=True)

        with pytest.raises(RmaError, match="unknown RMA attributes"):
            World(n_ranks=1).run(program)

    def test_default_scoped_per_communicator(self):
        def program(ctx):
            comm2 = yield from ctx.comm.dup()
            ctx.rma.set_default_attrs(RmaAttrs.strict(), comm2)
            return (
                ctx.rma.default_attrs(ctx.comm).blocking,
                ctx.rma.default_attrs(comm2).blocking,
            )

        out = World(n_ranks=2).run(program)
        assert out[0] == (False, True)


class TestXfer:
    def test_xfer_put_and_get(self):
        def program(ctx):
            alloc, tmems = yield from ctx.rma.expose_collective(64)
            result = None
            if ctx.rank == 1:
                src = ctx.mem.space.alloc(8, fill=3)
                yield from ctx.rma.xfer(
                    "put", src, 0, 8, BYTE, tmems[0], 0, 8, BYTE,
                    blocking=True, remote_completion=True,
                )
                dst = ctx.mem.space.alloc(8)
                yield from ctx.rma.xfer(
                    "get", dst, 0, 8, BYTE, tmems[0], 0, 8, BYTE,
                    blocking=True,
                )
                result = ctx.mem.load(dst, 0, 8).tolist()
            yield from ctx.comm.barrier()
            return result

        assert World(n_ranks=2).run(program)[1] == [3] * 8

    def test_xfer_accumulate(self):
        from repro.datatypes import INT32

        def program(ctx):
            alloc, tmems = yield from ctx.rma.expose_collective(64)
            result = None
            if ctx.rank == 0:
                ctx.mem.space.view(alloc, "int32")[0] = 10
            yield from ctx.comm.barrier()
            if ctx.rank == 1:
                src = ctx.mem.space.alloc(4)
                ctx.mem.space.view(src, "int32")[0] = 7
                yield from ctx.rma.xfer(
                    "accumulate", src, 0, 1, INT32, tmems[0], 0, 1, INT32,
                    accumulate_optype="sum", blocking=True,
                    remote_completion=True,
                )
            yield from ctx.comm.barrier()
            if ctx.rank == 0:
                result = int(ctx.mem.space.view(alloc, "int32")[0])
            return result

        assert World(n_ranks=2).run(program)[0] == 17

    def test_xfer_unknown_optype(self):
        def program(ctx):
            yield from ctx.rma.xfer("teleport")

        with pytest.raises(RmaError, match="unknown rma_optype"):
            World(n_ranks=1).run(program)

    def test_xfer_rmi_requires_name_and_rank(self):
        def program(ctx):
            yield from ctx.rma.xfer("rmi")

        with pytest.raises(RmaError, match="requires rmi_name"):
            World(n_ranks=1).run(program)


class TestStats:
    def test_engine_statistics(self):
        def program(ctx):
            alloc, tmems = yield from ctx.rma.expose_collective(128)
            result = None
            if ctx.rank == 1:
                src = ctx.mem.space.alloc(16)
                yield from ctx.rma.put(src, 0, 16, BYTE, tmems[0], 0, 16,
                                       BYTE, blocking=True)
                yield from ctx.rma.get(src, 0, 16, BYTE, tmems[0], 0, 16,
                                       BYTE, blocking=True)
                yield from ctx.rma.complete(ctx.comm, 0)
                result = dict(ctx.rma.stats)
            yield from ctx.comm.barrier()
            return result

        out = World(n_ranks=2).run(program)
        st = out[1]
        assert st["puts"] == 1
        assert st["gets"] == 1
        assert st["completes"] == 1
        assert st["bytes_put"] == 16
        assert st["bytes_got"] == 16
