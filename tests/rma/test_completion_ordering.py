"""Tests for completion and ordering semantics across fabric personalities."""

import numpy as np
import pytest

from repro.datatypes import BYTE, INT32
from repro.network import (
    generic_rdma,
    infiniband_like,
    quadrics_like,
    seastar_portals,
)
from repro.rma import ALL_RANKS, RmaAttrs
from repro.runtime import World


NETWORKS = {
    "seastar": seastar_portals,    # ordered + EQ
    "infiniband": infiniband_like, # ordered, no EQ (software flush)
    "quadrics": quadrics_like,     # unordered + EQ
    "generic": generic_rdma,
}


@pytest.mark.parametrize("netname", sorted(NETWORKS))
def test_complete_guarantees_visibility(netname):
    """After rma_complete returns, a later get (from anywhere) sees the
    data — on every fabric personality, whatever strategy was used."""

    def program(ctx):
        alloc, tmems = yield from ctx.rma.expose_collective(8192)
        result = None
        if ctx.rank == 1:
            src = ctx.mem.space.alloc(6000)
            ctx.mem.store(src, 0, np.full(6000, 42, dtype=np.uint8))
            for i in range(4):
                yield from ctx.rma.put(src, 0, 1500, BYTE, tmems[0], i * 1500,
                                       1500, BYTE, blocking=True)
            yield from ctx.rma.complete(ctx.comm, 0)
            # signal rank 0 it may read
            yield from ctx.comm.send("done", dest=0)
        elif ctx.rank == 0:
            yield from ctx.comm.recv(source=1)
            got = ctx.mem.load(alloc, 0, 6000)
            result = int((got == 42).sum())
        yield from ctx.comm.barrier()
        return result

    out = World(n_ranks=3, network=NETWORKS[netname]()).run(program)
    assert out[0] == 6000


@pytest.mark.parametrize("netname", sorted(NETWORKS))
def test_complete_all_ranks(netname):
    def program(ctx):
        alloc, tmems = yield from ctx.rma.expose_collective(64)
        if ctx.rank == 0:
            src = ctx.mem.space.alloc(8, fill=7)
            for dst in range(1, ctx.size):
                yield from ctx.rma.put(src, 0, 8, BYTE, tmems[dst], 0, 8,
                                       BYTE, blocking=True)
            yield from ctx.rma.complete(ctx.comm, ALL_RANKS)
            for dst in range(1, ctx.size):
                yield from ctx.comm.send("go", dest=dst)
            return None
        yield from ctx.comm.recv(source=0)
        return ctx.mem.load(alloc, 0, 8).tolist()

    out = World(n_ranks=4, network=NETWORKS[netname]()).run(program)
    assert out[1:] == [[7] * 8] * 3


def test_complete_collective():
    def program(ctx):
        alloc, tmems = yield from ctx.rma.expose_collective(64)
        right = (ctx.rank + 1) % ctx.size
        src = ctx.mem.space.alloc(8, fill=ctx.rank + 1)
        yield from ctx.rma.put(src, 0, 8, BYTE, tmems[right], 0, 8, BYTE,
                               blocking=True)
        yield from ctx.rma.complete_collective(ctx.comm)
        # after the collective completion everyone may read its own memory
        return ctx.mem.load(alloc, 0, 8).tolist()

    out = World(n_ranks=4).run(program)
    for r in range(4):
        left = (r - 1) % 4
        assert out[r] == [left + 1] * 8


def test_complete_with_no_traffic_is_cheap_noop():
    def program(ctx):
        t0 = ctx.sim.now
        yield from ctx.rma.complete(ctx.comm, ALL_RANKS)
        return ctx.sim.now - t0

    out = World(n_ranks=2).run(program)
    assert all(dt < 1.0 for dt in out)


def test_request_without_remote_completion_is_local():
    """Local completion triggers at injection, long before delivery."""

    def program(ctx):
        alloc, tmems = yield from ctx.rma.expose_collective(65536)
        if ctx.rank == 1:
            src = ctx.mem.space.alloc(32768)
            t0 = ctx.sim.now
            req_local = yield from ctx.rma.put(
                src, 0, 32768, BYTE, tmems[0], 0, 32768, BYTE)
            yield from req_local.wait()
            t_local = ctx.sim.now - t0

            t0 = ctx.sim.now
            req_remote = yield from ctx.rma.put(
                src, 0, 32768, BYTE, tmems[0], 0, 32768, BYTE,
                remote_completion=True)
            yield from req_remote.wait()
            t_remote = ctx.sim.now - t0
            return (t_local, t_remote)
        yield from ctx.comm.barrier()

    def program_with_barrier(ctx):
        result = yield from program(ctx)
        if ctx.rank == 1:
            yield from ctx.comm.barrier()
        return result

    out = World(n_ranks=2, network=seastar_portals()).run(program_with_barrier)
    t_local, t_remote = out[1]
    assert t_remote > t_local, "remote completion must cost more than local"


class TestOrderingAttribute:
    def test_read_your_writes_with_ordering_on_unordered_network(self):
        """Put then get with ordering: the get must observe the put
        (paper §III-A read/write consistency), even on a fabric that
        reorders packets."""

        def program(ctx, seed_unused):
            alloc, tmems = yield from ctx.rma.expose_collective(16)
            if ctx.rank == 1:
                src = ctx.mem.space.alloc(8, fill=99)
                dst = ctx.mem.space.alloc(8)
                attrs = RmaAttrs(ordering=True)
                yield from ctx.rma.put(src, 0, 8, BYTE, tmems[0], 0, 8, BYTE,
                                       attrs=attrs)
                yield from ctx.rma.get(dst, 0, 8, BYTE, tmems[0], 0, 8, BYTE,
                                       attrs=attrs.with_(blocking=True))
                return ctx.mem.load(dst, 0, 8).tolist()
            yield from ctx.comm.barrier()

        def wrapped(ctx):
            result = yield from program(ctx, None)
            if ctx.rank == 1:
                yield from ctx.comm.barrier()
            return result

        for seed in range(8):
            out = World(n_ranks=2, network=quadrics_like(), seed=seed).run(
                wrapped
            )
            assert out[1] == [99] * 8, f"seed {seed}: stale read"

    def test_without_ordering_get_can_overtake_put_on_unordered_network(self):
        """The dual: attribute-free ops may be observed out of order on
        a Quadrics-like fabric (this is why the attribute exists)."""

        def wrapped(ctx):
            alloc, tmems = yield from ctx.rma.expose_collective(16)
            result = None
            if ctx.rank == 1:
                src = ctx.mem.space.alloc(8, fill=99)
                dst = ctx.mem.space.alloc(8)
                yield from ctx.rma.put(src, 0, 8, BYTE, tmems[0], 0, 8, BYTE)
                yield from ctx.rma.get(dst, 0, 8, BYTE, tmems[0], 0, 8, BYTE,
                                       blocking=True)
                result = ctx.mem.load(dst, 0, 8).tolist()
            yield from ctx.comm.barrier()
            return result

        stale_seen = False
        for seed in range(30):
            out = World(n_ranks=2, network=quadrics_like(), seed=seed).run(
                wrapped
            )
            if out[1] != [99] * 8:
                stale_seen = True
                break
        assert stale_seen, (
            "expected at least one seed where the get overtakes the put"
        )

    def test_ordering_attr_final_value_deterministic(self):
        """Two ordered puts to the same location: the second always wins."""

        def wrapped(ctx):
            alloc, tmems = yield from ctx.rma.expose_collective(16)
            if ctx.rank == 1:
                a = ctx.mem.space.alloc(8, fill=1)
                b = ctx.mem.space.alloc(8, fill=2)
                attrs = RmaAttrs(ordering=True)
                yield from ctx.rma.put(a, 0, 8, BYTE, tmems[0], 0, 8, BYTE,
                                       attrs=attrs)
                yield from ctx.rma.put(b, 0, 8, BYTE, tmems[0], 0, 8, BYTE,
                                       attrs=attrs)
                yield from ctx.rma.complete(ctx.comm, 0)
                yield from ctx.comm.send("done", dest=0)
                yield from ctx.comm.barrier()
                return None
            yield from ctx.comm.recv(source=1)
            got = ctx.mem.load(alloc, 0, 8).tolist()
            yield from ctx.comm.barrier()
            return got

        for seed in range(10):
            out = World(n_ranks=2, network=quadrics_like(), seed=seed).run(
                wrapped
            )
            assert out[0] == [2] * 8, f"seed {seed}: first put won"


class TestOrderCall:
    def test_order_call_orders_across_unordered_fabric(self):
        """put A; rma_order; put B — B must never lose to A."""

        def wrapped(ctx):
            alloc, tmems = yield from ctx.rma.expose_collective(16)
            if ctx.rank == 1:
                a = ctx.mem.space.alloc(8, fill=1)
                b = ctx.mem.space.alloc(8, fill=2)
                yield from ctx.rma.put(a, 0, 8, BYTE, tmems[0], 0, 8, BYTE)
                yield from ctx.rma.order(ctx.comm, 0)
                yield from ctx.rma.put(b, 0, 8, BYTE, tmems[0], 0, 8, BYTE)
                yield from ctx.rma.complete(ctx.comm, 0)
                yield from ctx.comm.send("done", dest=0)
                yield from ctx.comm.barrier()
                return None
            yield from ctx.comm.recv(source=1)
            got = ctx.mem.load(alloc, 0, 8).tolist()
            yield from ctx.comm.barrier()
            return got

        for seed in range(10):
            out = World(n_ranks=2, network=quadrics_like(), seed=seed).run(
                wrapped
            )
            assert out[0] == [2] * 8, f"seed {seed}"

    def test_order_generates_no_network_traffic(self):
        def program(ctx):
            alloc, tmems = yield from ctx.rma.expose_collective(16)
            if ctx.rank == 1:
                src = ctx.mem.space.alloc(8)
                yield from ctx.rma.put(src, 0, 8, BYTE, tmems[0], 0, 8, BYTE,
                                       blocking=True)
                sent_before = ctx.nic.packets_sent
                yield from ctx.rma.order(ctx.comm, 0)
                yield from ctx.rma.order(ctx.comm, ALL_RANKS)
                return ctx.nic.packets_sent - sent_before
            yield from ctx.comm.barrier()

        def wrapped(ctx):
            r = yield from program(ctx)
            if ctx.rank == 1:
                yield from ctx.comm.barrier()
            return r

        assert World(n_ranks=2).run(wrapped)[1] == 0

    def test_order_collective(self):
        def program(ctx):
            alloc, tmems = yield from ctx.rma.expose_collective(16)
            yield from ctx.rma.order_collective(ctx.comm)
            return True

        assert all(World(n_ranks=4).run(program))


def test_flush_strategy_used_when_no_completion_events():
    """On an InfiniBand-like fabric (no EQ) attribute-free puts generate
    no per-packet acks; complete() must still work via watermark flush."""

    def program(ctx):
        alloc, tmems = yield from ctx.rma.expose_collective(1024)
        if ctx.rank == 1:
            src = ctx.mem.space.alloc(512, fill=3)
            for _ in range(10):
                yield from ctx.rma.put(src, 0, 512, BYTE, tmems[0], 0, 512,
                                       BYTE, blocking=True)
            acks_before = ctx.nic.packets_received
            yield from ctx.rma.complete(ctx.comm, 0)
            # exactly one flush ack should have come back
            return ctx.nic.packets_received - acks_before
        yield from ctx.comm.barrier()

    def wrapped(ctx):
        r = yield from program(ctx)
        if ctx.rank == 1:
            yield from ctx.comm.barrier()
        return r

    out = World(n_ranks=2, network=infiniband_like()).run(wrapped)
    assert out[1] == 1
