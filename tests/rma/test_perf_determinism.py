"""Determinism regression tests for the performance fast paths.

The optimized kernel/data-plane paths (urgent deque, analytic burst
flight, memoized layouts, zero-copy pack) must not change a single
simulated timestamp.  These tests pin that:

- same seed, same run → byte-identical trace streams and final times;
- burst injection on vs off → identical simulated results;
- the ``segments_for`` fast path → identical layouts to the naive
  per-instance expansion;
- zero-copy pack → identical bytes, genuinely aliasing the source.
"""

import numpy as np
import pytest

from repro.bench.workloads import (
    fig2_attribute_cost,
    halo_exchange_time,
    latency_once,
)
from repro.datatypes import BYTE, DOUBLE, INT32
from repro.datatypes.base import Segment, coalesce
from repro.datatypes.derived import contiguous, vector
from repro.datatypes.pack import pack, unpack_swapped
from repro.network.config import infiniband_like, shared_memory_like
from repro.network.fabric import Fabric
from repro.network.nic import Nic
from repro.runtime import World


@pytest.fixture
def per_packet_nic():
    """Disable the analytic burst path for the duration of a test."""
    Nic.burst_enabled = False
    try:
        yield
    finally:
        Nic.burst_enabled = True


def _trace_tuples(world):
    return [
        (r.time, r.category, r.kind, r.rank, tuple(sorted(r.detail.items())),
         r.seq)
        for r in world.tracer
    ]


class TestSameSeedIdentical:
    def _traced_run(self, seed):
        world = World(n_ranks=4, seed=seed, trace=True)

        def program(ctx):
            alloc, tmems = yield from ctx.rma.expose_collective(256)
            src = ctx.mem.space.alloc(8, fill=ctx.rank + 1)
            yield from ctx.comm.barrier()
            right = (ctx.rank + 1) % ctx.size
            yield from ctx.rma.put(
                src, 0, 8, BYTE, tmems[right], 0, 8, BYTE,
                blocking=True, remote_completion=True,
            )
            yield from ctx.comm.barrier()
            return ctx.sim.now

        out = world.run(program)
        return out, world.sim.now, _trace_tuples(world)

    def test_traces_and_times_bit_identical(self):
        a = self._traced_run(seed=7)
        b = self._traced_run(seed=7)
        assert a == b

    def test_different_seed_same_deterministic_times(self):
        # Seeds only feed jitter streams; an ordered fabric draws none,
        # so times match — but the runs must each be self-consistent.
        a = self._traced_run(seed=1)
        b = self._traced_run(seed=2)
        assert a[1] == b[1]


class TestBurstTimestampParity:
    WORKLOADS = [
        lambda: fig2_attribute_cost("none", 65536, puts_per_origin=10),
        lambda: fig2_attribute_cost("ordering", 16384, puts_per_origin=10),
        lambda: fig2_attribute_cost("remote_complete", 65536,
                                    puts_per_origin=10),
        lambda: fig2_attribute_cost("atomicity+thread", 16384,
                                    puts_per_origin=10),
        lambda: halo_exchange_time("fence", n_ranks=4, halo_bytes=8192,
                                   iterations=5),
        lambda: halo_exchange_time("pscw", n_ranks=4, halo_bytes=8192,
                                   iterations=5),
        lambda: halo_exchange_time("strawman", n_ranks=4, halo_bytes=8192,
                                   iterations=5),
        lambda: latency_once("strawman", size=262144),
        lambda: latency_once("mpi2_fence", size=65536),
    ]

    @pytest.mark.parametrize("idx", range(len(WORKLOADS)))
    def test_burst_on_off_identical(self, idx):
        wl = self.WORKLOADS[idx]
        Nic.burst_enabled = False
        try:
            reference = wl()
        finally:
            Nic.burst_enabled = True
        assert wl() == reference

    def test_burst_path_actually_engages(self, monkeypatch):
        from repro.rma.engine import RmaEngine

        hits = []
        original = Fabric.transmit_burst

        def counting(self, packets, inject_times):
            hits.append(len(packets))
            return original(self, packets, inject_times)

        monkeypatch.setattr(Fabric, "transmit_burst", counting)
        # The op-train fast path supersedes burst transmission entirely
        # (no packets at all); pin it off to observe the burst layer.
        monkeypatch.setattr(RmaEngine, "train_enabled", False)
        fig2_attribute_cost("remote_complete", 65536, puts_per_origin=10)
        assert hits and all(n >= 2 for n in hits)

    def test_per_packet_fallback_when_tracing(self, monkeypatch):
        called = []
        monkeypatch.setattr(
            Fabric, "transmit_burst",
            lambda self, packets, ts: called.append(True),
        )
        world = World(n_ranks=2, trace=True)

        def program(ctx):
            alloc, tmems = yield from ctx.rma.expose_collective(65536)
            src = ctx.mem.space.alloc(65536)
            yield from ctx.comm.barrier()
            if ctx.rank == 0:
                yield from ctx.rma.put(
                    src, 0, 65536, BYTE, tmems[1], 0, 65536, BYTE,
                    blocking=True, remote_completion=True,
                )
            yield from ctx.comm.barrier()

        world.run(program)
        assert not called


class TestObservabilityOffPinnedToBaseline:
    """With observability off, simulated timestamps are bit-identical to
    the values recorded in ``BENCH_PR1.json`` before the observability
    layer existed — the pay-for-what-you-use guarantee.

    Pinned with the burst path both on and off, and with an (inert)
    empty fault plan, so none of the instrumented layers may shift a
    single simulated event when tracing is disabled.
    """

    @classmethod
    def _baseline(cls):
        import json
        import os

        path = os.path.join(os.path.dirname(__file__), "..", "..",
                            "BENCH_PR1.json")
        with open(path) as fh:
            return json.load(fh)["results"]

    # fig2 runs in BENCH_PR1.json used puts_per_origin=50.
    FIG2_POINTS = [("none", 1024), ("none", 16384), ("none", 65536),
                   ("ordering", 16384), ("remote_complete", 1024),
                   ("remote_complete", 16384)]

    @pytest.mark.parametrize("burst", [True, False],
                             ids=["burst-on", "burst-off"])
    @pytest.mark.parametrize("mode,size", FIG2_POINTS)
    def test_fig2_sim_us_bit_identical(self, mode, size, burst):
        expected = self._baseline()["fig2"]["points"][f"{mode}/{size}"]["sim_us"]
        Nic.burst_enabled = burst
        try:
            assert fig2_attribute_cost(mode, size,
                                       puts_per_origin=50) == expected
        finally:
            Nic.burst_enabled = True

    def test_fig2_sim_us_with_empty_fault_plan(self):
        from repro.faults import FaultPlan

        expected = self._baseline()["fig2"]["points"]["none/16384"]["sim_us"]
        assert fig2_attribute_cost(
            "none", 16384, puts_per_origin=50, fault_plan=FaultPlan()
        ) == expected

    def test_halo_sim_us_bit_identical(self):
        expected = self._baseline()["halo"]
        got = halo_exchange_time(
            "strawman", n_ranks=expected["n_ranks"],
            halo_bytes=expected["halo_bytes"],
            iterations=expected["iterations"],
        )
        assert got == expected["sim_us_per_iter"]


class TestSegmentsForFastPath:
    def _reference(self, dtype, count):
        segs = []
        for i in range(count):
            base = i * dtype.extent
            for seg in dtype.segments:
                segs.append(Segment(base + seg.disp, seg.nbytes,
                                    seg.elem_size))
        return coalesce(segs)

    @pytest.mark.parametrize("dtype", [
        BYTE, DOUBLE, contiguous(16, INT32),
        vector(4, 3, 5, DOUBLE),
        vector(2, 2, 2, INT32),  # blocklength == stride: fully dense
    ])
    @pytest.mark.parametrize("count", [1, 2, 7, 64])
    def test_matches_reference(self, dtype, count):
        assert dtype.segments_for(count) == self._reference(dtype, count)

    def test_contiguous_collapses_to_one_segment(self):
        assert len(BYTE.segments_for(65536)) == 1
        assert len(contiguous(1024, BYTE).segments_for(64)) == 1

    def test_memoized_result_stable(self):
        dt = vector(4, 3, 5, DOUBLE)
        first = dt.segments_for(32)
        assert dt.segments_for(32) is first  # cached
        assert first == self._reference(dt, 32)


class TestZeroCopyPack:
    def test_view_shares_memory_and_matches_copy(self):
        buf = np.arange(256, dtype=np.uint8)
        copied = pack(buf, 32, BYTE, 64)
        view = pack(buf, 32, BYTE, 64, copy=False)
        assert np.array_equal(view, copied)
        assert np.shares_memory(view, buf)
        assert not np.shares_memory(copied, buf)
        assert not view.flags.writeable

    def test_view_reflects_later_writes(self):
        buf = np.zeros(64, dtype=np.uint8)
        view = pack(buf, 0, BYTE, 64, copy=False)
        buf[0] = 99
        assert view[0] == 99  # the documented aliasing contract

    def test_noncontiguous_always_fresh(self):
        dt = vector(2, 4, 8, BYTE)
        buf = np.arange(64, dtype=np.uint8)
        out = pack(buf, 0, dt, 2, copy=False)
        assert not np.shares_memory(out, buf)

    def test_unpack_swapped_scratch_matches_fresh(self):
        rng = np.random.default_rng(0)
        data = rng.integers(0, 256, size=32, dtype=np.uint8)
        out_a = np.zeros(32, dtype=np.uint8)
        out_b = np.zeros(32, dtype=np.uint8)
        unpack_swapped(data, out_a, 0, DOUBLE, 4)
        scratch = np.empty(128, dtype=np.uint8)
        unpack_swapped(data, out_b, 0, DOUBLE, 4, scratch=scratch)
        assert np.array_equal(out_a, out_b)


class TestPerPathAckGating:
    """Hardware acks are a per-(src, dst)-path capability.

    On a hierarchical machine whose interconnect lacks remote-completion
    events while the intra-node personality has them (or vice versa),
    a remotely-complete put must terminate on both path kinds — the
    mode choice, the ack-event creation, and the delivery-side ack must
    all consult the same per-path config.
    """

    def _machine(self):
        from repro.machine.config import generic_cluster

        return generic_cluster(n_nodes=2, ranks_per_node=2)

    @pytest.mark.parametrize("inter, intra", [
        (infiniband_like(), shared_memory_like()),  # acks intra-node only
        (shared_memory_like(), infiniband_like()),  # acks inter-node only
    ])
    def test_remote_complete_put_terminates_on_both_paths(self, inter, intra):
        world = World(machine=self._machine(), network=inter,
                      intra_node_network=intra)

        def program(ctx):
            alloc, tmems = yield from ctx.rma.expose_collective(64)
            src = ctx.mem.space.alloc(16, fill=ctx.rank + 1)
            yield from ctx.comm.barrier()
            if ctx.rank == 0:
                # Same node as rank 1, different node than rank 2.
                for dst in (1, 2):
                    yield from ctx.rma.put(
                        src, 0, 16, BYTE, tmems[dst], 0, 16, BYTE,
                        blocking=True, remote_completion=True,
                    )
            yield from ctx.comm.barrier()
            return "done"

        # A mis-gated ack mode would strand rank 0 waiting forever; the
        # run completing with every rank past the final barrier is the
        # regression check (World.run raises on deadlock/limit).
        out = world.run(program, limit=1e9)
        assert out == ["done"] * 4
