"""Tests for get_accumulate (sectioned atomic fetch-and-op)."""

import numpy as np
import pytest

from repro.datatypes import FLOAT64, INT32
from repro.machine import cray_xt5_catamount
from repro.network import seastar_portals
from repro.rma import RmaError
from repro.runtime import World


def test_fetches_old_and_applies_update():
    def program(ctx):
        alloc, tmems = yield from ctx.rma.expose_collective(64)
        result = None
        if ctx.rank == 0:
            ctx.mem.space.view(alloc, "int32")[:4] = [10, 20, 30, 40]
        yield from ctx.comm.barrier()
        if ctx.rank == 1:
            buf = ctx.mem.space.alloc(16)
            ctx.mem.space.view(buf, "int32")[:4] = [1, 1, 1, 1]
            yield from ctx.rma.get_accumulate(
                buf, 0, 4, INT32, tmems[0], 0, 4, INT32, op="sum",
            )
            result = ctx.mem.space.view(buf, "int32")[:4].tolist()
        yield from ctx.comm.barrier()
        if ctx.rank == 0:
            return ctx.mem.space.view(alloc, "int32")[:4].tolist()
        return result

    out = World(n_ranks=2).run(program)
    assert out[1] == [10, 20, 30, 40]  # old values fetched
    assert out[0] == [11, 21, 31, 41]  # update applied


def test_replace_is_section_swap():
    def program(ctx):
        alloc, tmems = yield from ctx.rma.expose_collective(32)
        result = None
        if ctx.rank == 0:
            ctx.mem.space.view(alloc, "float64")[:2] = [1.5, 2.5]
        yield from ctx.comm.barrier()
        if ctx.rank == 1:
            buf = ctx.mem.space.alloc(16)
            ctx.mem.space.view(buf, "float64")[:2] = [9.0, 8.0]
            yield from ctx.rma.get_accumulate(
                buf, 0, 2, FLOAT64, tmems[0], 0, 2, FLOAT64, op="replace",
            )
            result = ctx.mem.space.view(buf, "float64")[:2].tolist()
        yield from ctx.comm.barrier()
        if ctx.rank == 0:
            return ctx.mem.space.view(alloc, "float64")[:2].tolist()
        return result

    out = World(n_ranks=2).run(program)
    assert out[1] == [1.5, 2.5]
    assert out[0] == [9.0, 8.0]


def test_concurrent_get_accumulates_linearize():
    """Each fetch sees a consistent prior state: the fetched sums are
    all distinct and the final total is exact."""

    def program(ctx):
        alloc, tmems = yield from ctx.rma.expose_collective(8)
        fetched = []
        if ctx.rank != 0:
            buf = ctx.mem.space.alloc(8)
            ctx.mem.space.view(buf, "int32")[0] = 1
            ones = ctx.mem.space.view(buf, "int32")
            for _ in range(5):
                ones[0] = 1
                yield from ctx.rma.get_accumulate(
                    buf, 0, 1, INT32, tmems[0], 0, 1, INT32, op="sum",
                )
                fetched.append(int(ones[0]))
        yield from ctx.comm.barrier()
        if ctx.rank == 0:
            return int(ctx.mem.space.view(alloc, "int32")[0])
        return fetched

    out = World(n_ranks=4).run(program)
    assert out[0] == 15
    all_fetched = sorted(v for f in out[1:] for v in f)
    assert all_fetched == list(range(15))


def test_get_accumulate_through_lock_serializer():
    def program(ctx):
        alloc, tmems = yield from ctx.rma.expose_collective(8)
        if ctx.rank != 0:
            buf = ctx.mem.space.alloc(8)
            v = ctx.mem.space.view(buf, "int64")
            for _ in range(3):
                v[0] = 2
                yield from ctx.rma.get_accumulate(
                    buf, 0, 1,
                    __import__("repro.datatypes", fromlist=["INT64"]).INT64,
                    tmems[0], 0, 1,
                    __import__("repro.datatypes", fromlist=["INT64"]).INT64,
                    op="sum",
                )
        yield from ctx.comm.barrier()
        if ctx.rank == 0:
            return int(ctx.mem.space.view(alloc, "int64")[0])

    w = World(machine=cray_xt5_catamount(3), network=seastar_portals(),
              serializer="lock")
    assert w.run(program)[0] == 12


def test_zero_size_completes_instantly():
    def program(ctx):
        alloc, tmems = yield from ctx.rma.expose_collective(8)
        buf = ctx.mem.space.alloc(8)
        req = yield from ctx.rma.get_accumulate(
            buf, 0, 0, INT32, tmems[0], 0, 0, INT32,
        )
        yield from ctx.comm.barrier()
        return req.complete

    assert all(World(n_ranks=2).run(program))


def test_mixed_struct_rejected():
    from repro.datatypes import struct_type

    def program(ctx):
        alloc, tmems = yield from ctx.rma.expose_collective(64)
        buf = ctx.mem.space.alloc(64)
        mixed = struct_type([1, 1], [0, 8], [INT32, FLOAT64])
        yield from ctx.rma.get_accumulate(
            buf, 0, 1, mixed, tmems[0], 0, 1, mixed,
        )

    with pytest.raises(RmaError, match="uniform element"):
        World(n_ranks=2).run(program)


def test_large_section_fragments():
    n = 4096  # int32 elements: 16 KiB, several MTUs

    def program(ctx):
        alloc, tmems = yield from ctx.rma.expose_collective(4 * n)
        result = None
        if ctx.rank == 0:
            ctx.mem.space.view(alloc, "int32")[:n] = np.arange(n)
        yield from ctx.comm.barrier()
        if ctx.rank == 1:
            buf = ctx.mem.space.alloc(4 * n)
            ctx.mem.space.view(buf, "int32")[:n] = 1
            yield from ctx.rma.get_accumulate(
                buf, 0, n, INT32, tmems[0], 0, n, INT32, op="sum",
            )
            got = ctx.mem.space.view(buf, "int32")[:n]
            result = bool((got == np.arange(n)).all())
        yield from ctx.comm.barrier()
        if ctx.rank == 0:
            new = ctx.mem.space.view(alloc, "int32")[:n]
            return bool((new == np.arange(n) + 1).all())
        return result

    out = World(n_ranks=2).run(program)
    assert out[0] is True and out[1] is True
