"""Power check for the differential harness: the planted-unsound
``coalesce_too_eager`` pass must be *caught* within the standard
25-seed budget on an unordered fabric, ddmin-shrink to a <=4-op
reproducer, and leave a replayable artifact that records the pass
pipeline in its config."""

import pytest

from repro.check.config import RunConfig
from repro.check.generator import generate_program
from repro.check.shrink import (
    load_artifact,
    replay_artifact,
    save_artifact,
    shrink,
)
from repro.ir.ops import IrProgram
from repro.ir.passes import PASSES

FABRIC = "unordered"
SEED_BUDGET = range(25)


@pytest.fixture(scope="module")
def catch():
    """The first (config, program, report) the harness flags."""
    for seed in SEED_BUDGET:
        config = RunConfig(fabric=FABRIC, seed=seed,
                           ir_passes=("coalesce_too_eager",))
        program = generate_program(seed)
        report = config.check(program)
        if report.violations:
            return config, program, report
    pytest.fail("the planted-unsound pass escaped the 25-seed budget")


def test_eager_pass_caught_by_refinement_arm(catch):
    _, _, report = catch
    assert "ir-refinement" in report.checks_run
    # The optimized program is consistent with its own weakened text —
    # only re-keying onto the original (or the commutative-finals
    # diff) can expose the unsoundness.
    assert all(v.check.startswith(("refined:", "opt:"))
               or v.check == "commutative-finals"
               for v in report.violations)
    assert any(v.check.startswith("refined:")
               or v.check == "commutative-finals"
               for v in report.violations)


def test_honest_legality_gate_flags_the_same_plan(catch):
    _, program, _ = catch
    problems = PASSES["coalesce_too_eager"].precondition(
        IrProgram.from_program(program))
    assert problems  # static gate and differential harness agree


def test_shrinks_to_tiny_reproducer_with_replayable_artifact(catch, tmp_path):
    config, program, _ = catch
    result = shrink(program, config)
    assert result.original_ops > 4
    assert result.shrunk_ops <= 4
    assert result.report.violations

    path = tmp_path / "eager_reproducer.json"
    save_artifact(str(path), result.program, result.report, config=config)
    doc = load_artifact(str(path))
    assert doc["config"]["ir_passes"] == ["coalesce_too_eager"]
    assert doc["config"]["fabric"] == FABRIC

    replayed = replay_artifact(str(path))
    assert replayed.violations
    assert ({v.check for v in replayed.violations}
            & {v.check for v in result.report.violations})
