"""Per-pass unit tests: plans, the machine-checkable legality gates,
and the planted-unsound pass whose plan the honest gate rejects."""

from dataclasses import replace as dc_replace

import pytest

from repro.check.generator import generate_program
from repro.check.program import ProgOp, RmaProgram, VarSpec
from repro.ir.ops import IrProgram
from repro.ir.passes import PASSES, PIPELINE, IrPassError, optimize, run_pipeline


def _prog(ops, n_ranks=2):
    return RmaProgram(
        n_ranks=n_ranks,
        vars=(VarSpec(vid=0, vtype="data", owner=1),),
        ops=tuple(ops), label="unit")


def _ir(ops, n_ranks=2):
    return IrProgram.from_program(_prog(ops, n_ranks=n_ranks))


PUT1 = ProgOp(rank=0, kind="put", var=0, value=1)
PUT2 = ProgOp(rank=0, kind="put", var=0, value=2)
ORDER = ProgOp(rank=0, kind="order", target=-1)
COMPLETE = ProgOp(rank=0, kind="complete", target=-1)


class TestCoalesceFlushes:
    def test_removes_vacuous_flush(self):
        ir = _ir([ORDER, PUT1])
        out, stats = PASSES["coalesce_flushes"].run(ir)
        assert stats.flushes_removed == 1
        assert all(op.kind != "flush" for op in out.ops)

    def test_keeps_load_bearing_flush(self):
        ir = _ir([PUT1, ORDER, PUT2])
        out, stats = PASSES["coalesce_flushes"].run(ir)
        assert stats.flushes_removed == 0
        assert len(out.ops) == 3

    def test_removes_flush_subsumed_by_adjacent_complete(self):
        ir = _ir([PUT1, ORDER, COMPLETE, PUT2])
        out, stats = PASSES["coalesce_flushes"].run(ir)
        assert stats.flushes_removed == 1
        kinds = [(op.kind, op.flush) for op in out.ops]
        assert ("flush", "complete") in kinds
        assert ("flush", "order") not in kinds

    def test_legality_gate_blocks_an_illegal_plan(self):
        ir = _ir([PUT1, ORDER, PUT2])
        bad = dc_replace(PASSES["coalesce_flushes"],
                         plan=lambda _ir: [(1, "bogus justification")])
        with pytest.raises(IrPassError, match="load-bearing"):
            bad.run(ir)


class TestRelaxAttributes:
    def test_drops_ordering_without_aliasing_predecessor(self):
        ir = _ir([dc_replace(PUT1, attrs=("ordering",))])
        out, stats = PASSES["relax_attributes"].run(ir)
        assert stats.attrs_dropped == 1
        assert not out.ops[0].attrs

    def test_keeps_ordering_with_aliasing_predecessor(self):
        ir = _ir([PUT1, dc_replace(PUT2, attrs=("ordering",))])
        out, stats = PASSES["relax_attributes"].run(ir)
        assert stats.attrs_dropped == 0
        assert out.ops[1].has("ordering")

    def test_remote_completion_inert_without_blocking(self):
        ir = _ir([dc_replace(PUT1, attrs=("remote_completion",))])
        out, stats = PASSES["relax_attributes"].run(ir)
        assert stats.attrs_dropped == 1
        assert not out.ops[0].attrs

    def test_remote_completion_kept_with_blocking(self):
        ir = _ir([dc_replace(PUT1, attrs=("blocking", "remote_completion"))])
        out, stats = PASSES["relax_attributes"].run(ir)
        assert stats.attrs_dropped == 0
        assert out.ops[0].has("remote_completion")


def _noise(disp, nbytes=32, value=7, rank=0, target=1):
    return ProgOp(rank=rank, kind="noise", target=target, disp=disp,
                  nbytes=nbytes, value=value)


class TestElideDeadStores:
    def test_elides_unobserved_scratch_store(self):
        ir = _ir([_noise(600, 64)])
        out, stats = PASSES["elide_dead_stores"].run(ir)
        assert stats.stores_elided == 1
        assert stats.bytes_elided == 64
        assert not out.ops

    def test_keeps_store_overlapping_a_peek(self):
        ir = _ir([_noise(600, 64),
                  ProgOp(rank=0, kind="peek", target=1, disp=632, nbytes=32)])
        out, stats = PASSES["elide_dead_stores"].run(ir)
        assert stats.stores_elided == 0
        assert len(out.ops) == 2


class TestAggregatePuts:
    def test_merges_contiguous_same_value_run(self):
        ir = _ir([_noise(600, 32), _noise(632, 32)])
        out, stats = PASSES["aggregate_puts"].run(ir)
        assert (stats.puts_merged, stats.batches) == (2, 1)
        assert stats.bytes_batched == 64
        (batched,) = out.ops
        assert (batched.disp, batched.nbytes) == (600, 64)
        assert batched.origin == (0, 1)

    def test_refuses_gapped_run(self):
        ir = _ir([_noise(600, 32), _noise(700, 32)])
        out, stats = PASSES["aggregate_puts"].run(ir)
        assert stats.batches == 0
        assert len(out.ops) == 2

    def test_refuses_mixed_value_run(self):
        ir = _ir([_noise(600, 32, value=7), _noise(632, 32, value=9)])
        _, stats = PASSES["aggregate_puts"].run(ir)
        assert stats.batches == 0

    def test_refuses_interleaved_run(self):
        ir = _ir([_noise(600, 32), PUT1, _noise(632, 32)])
        _, stats = PASSES["aggregate_puts"].run(ir)
        assert stats.batches == 0


class TestPlantedEagerPass:
    def test_honest_gate_flags_plan_but_pass_skips_it(self):
        ir = _ir([PUT1, ORDER, dc_replace(PUT2, attrs=("ordering",))])
        eager = PASSES["coalesce_too_eager"]
        problems = eager.precondition(ir)
        assert len(problems) == 2  # the flush and the attr, both load-bearing
        out, stats = eager.run(ir)  # unchecked: the planted bug
        assert (stats.flushes_removed, stats.attrs_dropped) == (1, 1)
        assert all(not op.has("ordering") for op in out.ops)

    def test_registry_marks_it_test_only(self):
        eager = PASSES["coalesce_too_eager"]
        assert eager.test_only and eager.unchecked
        assert "coalesce_too_eager" not in PIPELINE


class TestPipeline:
    def test_unknown_pass_name_rejected(self):
        ir = _ir([PUT1])
        with pytest.raises(ValueError, match="unknown pass"):
            run_pipeline(ir, ("no_such_pass",))

    def test_optimize_keeps_provenance_in_range(self):
        program = generate_program(0)
        optimized, op_map, stats = optimize(program)
        assert [s.name for s in stats] == list(PIPELINE)
        assert len(optimized.ops) < len(program.ops)
        assert all(0 <= src < len(program.ops) for src in op_map.values())
        assert all(0 <= dst < len(optimized.ops) for dst in op_map)
