"""Pass-preservation suite (DESIGN §16): every pass alone and the full
pipeline preserve observable behavior on 25 generated seeds across an
ordered, an unordered and a torus fabric — the three-arm differential
check, plus bit-identical commutative (counter/rmw) finals."""

import pytest

from repro.check.generator import generate_program
from repro.check.runner import run_program
from repro.ir.passes import PIPELINE
from repro.ir.verify import verify_program

SEEDS = range(25)
CONFIGS = [(name,) for name in PIPELINE] + [PIPELINE]


@pytest.mark.parametrize("fabric", ["ordered", "unordered", "torus"])
def test_every_pass_and_pipeline_preserve_observables(fabric):
    changed = 0
    for seed in SEEDS:
        program = generate_program(seed)
        original = run_program(program, fabric, seed)
        for passes in CONFIGS:
            rep = verify_program(program, fabric, seed, passes=passes,
                                 original_result=original)
            assert rep.ok, (
                f"seed {seed} [{fabric}] {'+'.join(passes)}: "
                f"{[str(v) for v in rep.violations()]}")
            assert not rep.commutative_mismatches
            changed += rep.changed
    # The sweep must actually exercise optimized arms, not no-op.
    assert changed > len(SEEDS)
