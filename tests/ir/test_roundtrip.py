"""IR round-trip suite (DESIGN §16): program -> IR -> program is an
identity on 50 generated seeds, and both serialized forms — the
mlir-flavored text and JSON — hit a parse-print-parse fixed point."""

import pytest

from repro.check.generator import generate_ir, generate_program
from repro.ir import IrProgram, parse_ir, print_ir

SEEDS = range(50)


@pytest.mark.parametrize("seed", SEEDS)
def test_program_ir_program_identity(seed):
    program = generate_program(seed)
    ir = IrProgram.from_program(program)
    assert ir.to_program() == program


def test_notify_programs_round_trip():
    for seed in range(10):
        program = generate_program(seed, notify=True)
        ir = IrProgram.from_program(program)
        assert ir.to_program() == program
        assert parse_ir(print_ir(ir)) == ir


@pytest.mark.parametrize("seed", SEEDS)
def test_text_parse_print_parse_fixed_point(seed):
    ir = generate_ir(seed)
    text = print_ir(ir)
    reparsed = parse_ir(text)
    assert reparsed == ir
    assert print_ir(reparsed) == text


@pytest.mark.parametrize("seed", SEEDS)
def test_json_round_trip(seed):
    ir = generate_ir(seed)
    assert IrProgram.from_json(ir.to_json()) == ir


def test_ssa_result_ids_dense_and_unique():
    ir = generate_ir(7)
    results = ir.results()
    assert results, "seed 7 produces no value-producing ops?"
    assert sorted(results) == list(range(len(results)))


def test_lowering_preserves_canonical_indices():
    """Fresh lowering is provenance-trivial: op i descends from source
    op i, so the verifier's re-keying map is the identity."""
    ir = generate_ir(3)
    assert ir.op_map() == {i: i for i in range(len(ir.ops))}


def test_epoch_operands_match_fence_count():
    ir = generate_ir(11)
    epoch = 0
    for op in ir.ops:
        assert op.epoch == epoch
        if op.kind == "fence":
            epoch += 1
