"""DART-style teams, global pointers, and team segments."""

import numpy as np
import pytest

from repro.machine import MachineConfig, generic_cluster
from repro.pgas import GlobalPtr, PgasError, Team
from repro.runtime import World


def two_by_two():
    return MachineConfig(n_nodes=2, ranks_per_node=2)


class TestGlobalPtr:
    def test_arithmetic(self):
        p = GlobalPtr(0, 1, 8)
        assert (p + 8).offset == 16
        assert (p - 4).offset == 4
        assert (p + 8) - p == 8

    def test_distance_across_segments_rejected(self):
        with pytest.raises(ValueError):
            GlobalPtr(0, 0, 0) - GlobalPtr(1, 0, 0)

    def test_distance_across_units_rejected(self):
        with pytest.raises(ValueError):
            GlobalPtr(0, 1, 0) - GlobalPtr(0, 0, 0)

    def test_usable_as_dict_key_and_ordered(self):
        a, b = GlobalPtr(0, 0, 0), GlobalPtr(0, 0, 8)
        assert a < b
        assert {a: 1, b: 2}[b] == 2


class TestTeam:
    def test_world_team_identity_and_locality(self):
        w = World(machine=two_by_two())

        def program(ctx):
            team = Team.world(ctx)
            yield from team.barrier()
            return (team.size, team.myid, team.local_units(),
                    team.unit_world_rank(3), team.is_local(ctx.rank ^ 1))

        out = w.run(program)
        assert out[0] == (4, 0, [0, 1], 3, True)
        assert out[2][2] == [2, 3]

    def test_split_by_color(self):
        w = World(machine=generic_cluster(n_nodes=4))

        def program(ctx):
            team = Team.world(ctx)
            sub = yield from team.split(ctx.rank % 2)
            yield from sub.barrier()
            return sub.size, sub.myid, sub.unit_world_rank(sub.myid)

        out = w.run(program)
        # even ranks form one team, odd ranks the other
        assert out[0] == (2, 0, 0)
        assert out[2] == (2, 1, 2)
        assert out[1] == (2, 0, 1)

    def test_split_by_node_groups_colocated_units(self):
        w = World(machine=two_by_two())

        def program(ctx):
            team = Team.world(ctx)
            node_team = yield from team.split_by_node()
            yield from node_team.barrier()
            return (node_team.size,
                    [node_team.unit_world_rank(u)
                     for u in range(node_team.size)])

        out = w.run(program)
        assert out[0] == (2, [0, 1])
        assert out[3] == (2, [2, 3])

    def test_team_collectives(self):
        w = World(machine=generic_cluster(n_nodes=4))

        def program(ctx):
            team = Team.world(ctx)
            vals = yield from team.allgather(team.myid)
            total = yield from team.allreduce(team.myid, lambda a, b: a + b)
            root_only = yield from team.reduce(1, lambda a, b: a + b, root=2)
            top = yield from team.bcast(team.myid * 10, root=3)
            return vals, total, root_only, top

        out = w.run(program)
        assert out[0] == ([0, 1, 2, 3], 6, None, 30)
        assert out[2][2] == 4


class TestTeamSegment:
    def test_put_get_roundtrip_and_spill(self):
        w = World(machine=generic_cluster(n_nodes=4))

        def program(ctx):
            team = Team.world(ctx)
            seg = yield from team.memalloc(64)
            if team.myid == 0:
                # linear address 64 spills into unit 1's block
                ptr = seg.gptr(0, 0) + 64
                assert ptr.offset == 64
                yield from seg.put(ptr, np.arange(4, dtype=np.int64))
                back = yield from seg.get(ptr, 4, dtype="int64")
                assert back.tolist() == [0, 1, 2, 3]
                assert seg.linear(seg.gptr(2, 8)) == 136
                assert seg.at(136) == seg.gptr(2, 8)
            yield from seg.sync()
            mine = seg.local_view("int64", 4).tolist()
            yield from seg.free()
            return mine

        out = w.run(program)
        assert out[1] == [0, 1, 2, 3]
        assert out[2] == [0, 0, 0, 0]

    def test_accumulate_and_fetch_add(self):
        w = World(machine=generic_cluster(n_nodes=2))

        def program(ctx):
            team = Team.world(ctx)
            seg = yield from team.memalloc(16)
            ptr = seg.gptr(1, 0)
            yield from seg.accumulate(ptr, np.array([3], dtype=np.int64))
            yield from seg.sync()
            old = None
            if team.myid == 0:
                old = yield from seg.fetch_add(ptr, 10, dtype="int64")
            yield from seg.sync()
            final = seg.local_view("int64", 1)[0] if team.myid == 1 else None
            return old, None if final is None else int(final)

        out = w.run(program)
        assert out[0][0] == 6          # both units added 3
        assert out[1][1] == 16

    def test_cross_boundary_access_rejected(self):
        w = World(machine=generic_cluster(n_nodes=2))

        def program(ctx):
            team = Team.world(ctx)
            seg = yield from team.memalloc(16)
            err = None
            try:
                yield from seg.put(seg.gptr(0, 12),
                                   np.zeros(2, dtype=np.int64))
            except PgasError as exc:
                err = str(exc)
            out_of_seg = None
            try:
                seg.gptr(2, 0)
            except PgasError:
                out_of_seg = True
            yield from seg.free()
            return err, out_of_seg

        out = w.run(program)
        assert "crosses a unit boundary" in out[0][0]
        assert out[0][1] is True

    def test_freed_segment_rejects_use(self):
        w = World(machine=generic_cluster(n_nodes=2))

        def program(ctx):
            team = Team.world(ctx)
            seg = yield from team.memalloc(16)
            yield from seg.free()
            try:
                yield from seg.get(seg.gptr(0, 0), 1, dtype="int64")
            except PgasError:
                return True
            return False

        assert w.run(program) == [True, True]

    def test_colocated_segment_access_moves_no_packets(self):
        w = World(machine=two_by_two())

        def program(ctx):
            team = Team.world(ctx)
            seg = yield from team.memalloc(64)   # shared by default
            delta = None
            if team.myid == 0:
                before = ctx.rma.engine.nic.packets_sent
                yield from seg.put(seg.gptr(1, 0),
                                   np.array([7.5], dtype=np.float64))
                got = yield from seg.get(seg.gptr(1, 0), 1)
                assert got.tolist() == [7.5]
                delta = ctx.rma.engine.nic.packets_sent - before
            yield from seg.sync()
            return delta

        out = w.run(program)
        assert out[0] == 0
        assert w.contexts[0].rma.engine.stats["shm_ops"] == 2

    def test_memalloc_rejects_nonpositive_size(self):
        w = World(machine=generic_cluster(n_nodes=2))

        def program(ctx):
            team = Team.world(ctx)
            try:
                yield from team.memalloc(0)
            except PgasError:
                return True
            return False

        assert w.run(program) == [True, True]
