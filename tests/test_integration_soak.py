"""Soak test: every interface, concurrently, on a hybrid machine.

A randomized workload mixes strawman RMA (all attribute combinations),
MPI-2 windows, ARMCI, SHMEM, GlobalArray traffic and two-sided messaging
in one job on a heterogeneous machine over an unordered fabric — the
harshest configuration the model supports — and then checks hard
invariants: counters exact, accumulations exact, disjoint put regions
intact, no deadlock, determinism across reruns.
"""

import numpy as np
import pytest

from repro.datatypes import BYTE, FLOAT64, INT32
from repro.ga import GlobalArray
from repro.machine import hybrid_accelerator
from repro.network import quadrics_like
from repro.runtime import World

N_RANKS = 6
REGION = 4096


def soak_program(ctx):
    rng = np.random.default_rng(1000 + ctx.rank)

    alloc, tmems = yield from ctx.rma.expose_collective(REGION)
    win = yield from ctx.mpi2.win_create(ctx.mem.space.alloc(256))
    a_alloc, a_ptrs = yield from ctx.armci.malloc(256)
    sym = yield from ctx.shmem.shmem_malloc(64)
    ga = yield from GlobalArray.create(ctx, (N_RANKS * 4,))
    yield from ga.fill(0.0)
    yield from ctx.comm.barrier()

    # --- strawman: disjoint put lanes + shared atomic counter ----------
    # each rank owns byte lane [rank*64, rank*64+64) on every target
    lane = ctx.rank * 64
    src = ctx.mem.space.alloc(64, fill=ctx.rank + 1)
    for _ in range(5):
        dst = int(rng.integers(0, ctx.size))
        attrs_kwargs = {
            "ordering": bool(rng.integers(0, 2)),
            "atomicity": bool(rng.integers(0, 2)),
            "remote_completion": bool(rng.integers(0, 2)),
            "blocking": True,
        }
        yield from ctx.rma.put(src, 0, 64, BYTE, tmems[dst], lane, 64, BYTE,
                               **attrs_kwargs)
    for _ in range(4):
        yield from ctx.rma.fetch_and_add(tmems[0], 1024, "int64", 1)

    # --- GA accumulate + read_inc-driven writes -------------------------
    yield from ga.acc(slice(0, N_RANKS * 4), np.ones(N_RANKS * 4))

    # --- MPI-2 fence epoch ----------------------------------------------
    yield from win.fence()
    wsrc = ctx.mem.space.alloc(8, fill=9)
    yield from win.put(wsrc, 0, 8, BYTE, (ctx.rank + 1) % ctx.size,
                       ctx.rank * 8)
    yield from win.fence()

    # --- ARMCI daxpy + SHMEM p/g ------------------------------------------
    fsrc = ctx.mem.space.alloc(16)
    ctx.mem.space.view(fsrc, "float64")[:2] = [1.0, 2.0]
    yield from ctx.armci.acc(fsrc, 0, a_ptrs[0], 0, 2)
    yield from ctx.shmem.p(sym, ctx.rank, ctx.rank * 11,
                           pe=(ctx.rank + 1) % ctx.size)
    yield from ctx.shmem.barrier_all()

    # --- two-sided ring -----------------------------------------------------
    token = yield from ctx.comm.sendrecv(
        ctx.rank, dest=(ctx.rank + 1) % ctx.size,
        source=(ctx.rank - 1) % ctx.size,
    )

    # --- global completion, then verify -----------------------------------
    yield from ctx.rma.complete_collective(ctx.comm)
    yield from ga.sync()
    yield from ctx.comm.barrier()

    # lanes: each lane on me holds one writer's fill (last writer wins),
    # and never a mix (writers are distinct per lane... lanes are
    # per-writer, so lane r holds r+1 or 0)
    lanes_ok = True
    for r in range(ctx.size):
        got = np.unique(ctx.mem.load(alloc, r * 64, 64))
        if not (len(got) == 1 and got[0] in (0, r + 1)):
            lanes_ok = False
    counter = int(ctx.mem.space.view(alloc, "int64", offset=1024)[0])
    ga_vals = yield from ga.get(slice(0, N_RANKS * 4))
    armci_vals = ctx.mem.space.view(a_alloc, "float64")[:2].tolist()
    shmem_val = int(ctx.shmem.local_view(sym, "int64")[
        (ctx.rank - 1) % ctx.size
    ])
    yield from ga.destroy()
    return {
        "lanes_ok": lanes_ok,
        "counter": counter,
        "ga_total": float(ga_vals.sum()),
        "armci": armci_vals,
        "shmem": shmem_val,
        "token": token,
        "t": ctx.sim.now,
    }


@pytest.fixture(scope="module")
def soak_out():
    machine = hybrid_accelerator(n_host_nodes=3, n_accel_nodes=3)
    return World(machine=machine, network=quadrics_like(), seed=77).run(
        soak_program
    )


def test_soak_lanes_intact(soak_out):
    assert all(o["lanes_ok"] for o in soak_out)


def test_soak_counter_exact(soak_out):
    assert soak_out[0]["counter"] == 4 * N_RANKS


def test_soak_ga_accumulation_exact(soak_out):
    # every rank added 1.0 to every element
    assert all(o["ga_total"] == N_RANKS * N_RANKS * 4 for o in soak_out)


def test_soak_armci_daxpy_exact(soak_out):
    assert soak_out[0]["armci"] == [float(N_RANKS), 2.0 * N_RANKS]


def test_soak_shmem_values(soak_out):
    for r, o in enumerate(soak_out):
        writer = (r - 1) % N_RANKS
        assert o["shmem"] == writer * 11


def test_soak_ring_token(soak_out):
    for r, o in enumerate(soak_out):
        assert o["token"] == (r - 1) % N_RANKS


def test_soak_deterministic(soak_out):
    machine = hybrid_accelerator(n_host_nodes=3, n_accel_nodes=3)
    again = World(machine=machine, network=quadrics_like(), seed=77).run(
        soak_program
    )
    assert [o["t"] for o in again] == [o["t"] for o in soak_out]
