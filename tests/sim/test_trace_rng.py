"""Tests for Tracer and RngRegistry."""

from repro.sim import RngRegistry, Tracer


class TestTracer:
    def test_disabled_by_default_records_nothing(self):
        tr = Tracer()
        tr.record(1.0, "rma", "put_issue", rank=0)
        assert len(tr) == 0

    def test_records_when_enabled(self):
        tr = Tracer(enabled=True)
        tr.record(1.0, "rma", "put_issue", rank=0, size=8)
        tr.record(2.0, "net", "deliver", rank=1)
        assert len(tr) == 2
        recs = tr.records
        assert recs[0].kind == "put_issue"
        assert recs[0].detail["size"] == 8
        assert recs[0].seq == 0
        assert recs[1].seq == 1

    def test_filter(self):
        tr = Tracer(enabled=True)
        tr.record(1.0, "rma", "put", rank=0)
        tr.record(2.0, "rma", "get", rank=1)
        tr.record(3.0, "net", "put", rank=0)
        assert len(tr.filter(category="rma")) == 2
        assert len(tr.filter(kind="put")) == 2
        assert len(tr.filter(rank=0)) == 2
        assert len(tr.filter(category="rma", kind="put", rank=0)) == 1

    def test_clear_keeps_seq_monotonic(self):
        tr = Tracer(enabled=True)
        tr.record(1.0, "a", "x")
        tr.clear()
        tr.record(2.0, "a", "y")
        assert tr.records[0].seq == 1

    def test_iteration(self):
        tr = Tracer(enabled=True)
        tr.record(1.0, "a", "x")
        assert [r.kind for r in tr] == ["x"]

    def test_bump_and_counters_view(self):
        tr = Tracer()
        tr.bump("xport.retransmit")
        tr.bump("xport.retransmit", 2, rank=3)
        # the compat view aggregates over labels, keyed by bare name
        assert tr.counters == {"xport.retransmit": 3}
        # the underlying registry keeps the labeled split
        assert tr.metrics.counter("xport.retransmit", rank=3).value == 2

    def test_clear_resets_counters_too(self):
        # Regression: clear() used to drop records but leak counters, so
        # a tracer reused across bench repetitions double-counted.
        tr = Tracer(enabled=True)
        tr.record(1.0, "a", "x")
        tr.bump("fault.drop")
        tr.metrics.histogram("h").observe(1.0)
        tr.clear()
        assert len(tr) == 0
        assert tr.counters == {}
        assert len(tr.metrics) == 0

    def test_disabled_tracer_record_is_never_called_by_call_sites(self,
                                                                  monkeypatch):
        # Convention check: every record() call site in the stack must be
        # gated on tracer.enabled (record is not free even when it drops
        # the record).  A poisoned record on an untraced faulty workload
        # proves no site slipped through.
        from repro.datatypes import BYTE
        from repro.faults import FaultPlan
        from repro.network.config import generic_rdma
        from repro.runtime import World

        def boom(self, *args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("Tracer.record called while disabled")

        monkeypatch.setattr(Tracer, "record", boom)
        world = World(n_ranks=2, network=generic_rdma(),
                      fault_plan=FaultPlan().drop(0.05), seed=7)

        def program(ctx):
            alloc, tmems = yield from ctx.rma.expose_collective(1024)
            src = ctx.mem.space.alloc(1024, fill=ctx.rank + 1)
            peer = (ctx.rank + 1) % ctx.size
            yield from ctx.rma.put(src, 0, 1024, BYTE, tmems[peer], 0,
                                   1024, BYTE, remote_completion=True,
                                   blocking=True)
            yield from ctx.rma.complete()
            yield from ctx.comm.barrier()
            return True

        assert world.run(program) == [True, True]


class TestRngRegistry:
    def test_same_seed_same_stream_is_reproducible(self):
        a = RngRegistry(42)
        b = RngRegistry(42)
        va = [a.uniform("net.jitter", 0, 1) for _ in range(10)]
        vb = [b.uniform("net.jitter", 0, 1) for _ in range(10)]
        assert va == vb

    def test_different_names_are_independent(self):
        reg = RngRegistry(0)
        # Drawing from one stream must not perturb another.
        ref = RngRegistry(0)
        ref_vals = [ref.uniform("b", 0, 1) for _ in range(5)]
        reg.uniform("a", 0, 1)  # interleaved draw from another stream
        vals = [reg.uniform("b", 0, 1) for _ in range(5)]
        assert vals == ref_vals

    def test_different_seeds_differ(self):
        assert RngRegistry(1).uniform("x", 0, 1) != RngRegistry(2).uniform(
            "x", 0, 1
        )

    def test_exponential_positive(self):
        reg = RngRegistry(7)
        assert all(reg.exponential("e", 2.0) > 0 for _ in range(20))

    def test_stream_cached(self):
        reg = RngRegistry(0)
        assert reg.stream("s") is reg.stream("s")
