"""Tests for Tracer and RngRegistry."""

from repro.sim import RngRegistry, Tracer


class TestTracer:
    def test_disabled_by_default_records_nothing(self):
        tr = Tracer()
        tr.record(1.0, "rma", "put_issue", rank=0)
        assert len(tr) == 0

    def test_records_when_enabled(self):
        tr = Tracer(enabled=True)
        tr.record(1.0, "rma", "put_issue", rank=0, size=8)
        tr.record(2.0, "net", "deliver", rank=1)
        assert len(tr) == 2
        recs = tr.records
        assert recs[0].kind == "put_issue"
        assert recs[0].detail["size"] == 8
        assert recs[0].seq == 0
        assert recs[1].seq == 1

    def test_filter(self):
        tr = Tracer(enabled=True)
        tr.record(1.0, "rma", "put", rank=0)
        tr.record(2.0, "rma", "get", rank=1)
        tr.record(3.0, "net", "put", rank=0)
        assert len(tr.filter(category="rma")) == 2
        assert len(tr.filter(kind="put")) == 2
        assert len(tr.filter(rank=0)) == 2
        assert len(tr.filter(category="rma", kind="put", rank=0)) == 1

    def test_clear_keeps_seq_monotonic(self):
        tr = Tracer(enabled=True)
        tr.record(1.0, "a", "x")
        tr.clear()
        tr.record(2.0, "a", "y")
        assert tr.records[0].seq == 1

    def test_iteration(self):
        tr = Tracer(enabled=True)
        tr.record(1.0, "a", "x")
        assert [r.kind for r in tr] == ["x"]


class TestRngRegistry:
    def test_same_seed_same_stream_is_reproducible(self):
        a = RngRegistry(42)
        b = RngRegistry(42)
        va = [a.uniform("net.jitter", 0, 1) for _ in range(10)]
        vb = [b.uniform("net.jitter", 0, 1) for _ in range(10)]
        assert va == vb

    def test_different_names_are_independent(self):
        reg = RngRegistry(0)
        # Drawing from one stream must not perturb another.
        ref = RngRegistry(0)
        ref_vals = [ref.uniform("b", 0, 1) for _ in range(5)]
        reg.uniform("a", 0, 1)  # interleaved draw from another stream
        vals = [reg.uniform("b", 0, 1) for _ in range(5)]
        assert vals == ref_vals

    def test_different_seeds_differ(self):
        assert RngRegistry(1).uniform("x", 0, 1) != RngRegistry(2).uniform(
            "x", 0, 1
        )

    def test_exponential_positive(self):
        reg = RngRegistry(7)
        assert all(reg.exponential("e", 2.0) > 0 for _ in range(20))

    def test_stream_cached(self):
        reg = RngRegistry(0)
        assert reg.stream("s") is reg.stream("s")
