"""Tests for Resource, Semaphore, Store, Channel."""

import pytest

from repro.sim import Channel, Resource, Semaphore, Simulator, Store


@pytest.fixture
def sim():
    return Simulator()


class TestResource:
    def test_capacity_validation(self, sim):
        with pytest.raises(ValueError):
            Resource(sim, capacity=0)

    def test_uncontended_acquire_is_instant(self, sim):
        res = Resource(sim)

        def job(sim):
            yield from res.acquire()
            t = sim.now
            res.release()
            return t

        proc = sim.spawn(job(sim))
        assert sim.run_until_complete(proc) == 0

    def test_mutex_serializes_critical_sections(self, sim):
        res = Resource(sim)
        log = []

        def job(sim, name):
            yield from res.acquire()
            log.append((sim.now, name, "in"))
            yield sim.timeout(5)
            log.append((sim.now, name, "out"))
            res.release()

        sim.spawn(job(sim, "a"))
        sim.spawn(job(sim, "b"))
        sim.run()
        assert log == [
            (0, "a", "in"),
            (5, "a", "out"),
            (5, "b", "in"),
            (10, "b", "out"),
        ]

    def test_fifo_handoff_under_contention(self, sim):
        res = Resource(sim)
        order = []

        def job(sim, i):
            yield from res.acquire()
            order.append(i)
            yield sim.timeout(1)
            res.release()

        for i in range(5):
            sim.spawn(job(sim, i))
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_capacity_two_allows_two_holders(self, sim):
        res = Resource(sim, capacity=2)
        concurrent = []

        def job(sim):
            yield from res.acquire()
            concurrent.append(res.in_use)
            yield sim.timeout(1)
            res.release()

        for _ in range(4):
            sim.spawn(job(sim))
        sim.run()
        assert max(concurrent) == 2

    def test_release_without_acquire_raises(self, sim):
        with pytest.raises(RuntimeError):
            Resource(sim).release()

    def test_try_acquire(self, sim):
        res = Resource(sim)
        assert res.try_acquire()
        assert not res.try_acquire()
        res.release()
        assert res.try_acquire()

    def test_queue_length(self, sim):
        res = Resource(sim)

        def hold(sim):
            yield from res.acquire()
            yield sim.timeout(10)
            res.release()

        def wait(sim):
            yield from res.acquire()
            res.release()

        sim.spawn(hold(sim))
        sim.spawn(wait(sim))
        sim.spawn(wait(sim))
        sim.run(until=5)
        assert res.queue_length == 2


class TestSemaphore:
    def test_initial_count_validation(self, sim):
        with pytest.raises(ValueError):
            Semaphore(sim, initial=-1)

    def test_wait_on_positive_count_is_instant(self, sim):
        sem = Semaphore(sim, initial=2)

        def job(sim):
            yield from sem.wait()
            return sim.now

        p = sim.spawn(job(sim))
        assert sim.run_until_complete(p) == 0
        assert sem.count == 1

    def test_post_wakes_waiter(self, sim):
        sem = Semaphore(sim)

        def waiter(sim):
            yield from sem.wait()
            return sim.now

        p = sim.spawn(waiter(sim))
        sim.schedule(7, sem.post)
        assert sim.run_until_complete(p) == 7

    def test_post_multiple(self, sim):
        sem = Semaphore(sim)
        done = []

        def waiter(sim, i):
            yield from sem.wait()
            done.append(i)

        for i in range(3):
            sim.spawn(waiter(sim, i))
        sim.schedule(1, lambda: sem.post(3))
        sim.run()
        assert done == [0, 1, 2]

    def test_post_count_validation(self, sim):
        with pytest.raises(ValueError):
            Semaphore(sim).post(0)


class TestStore:
    def test_put_then_get(self, sim):
        store = Store(sim)
        store.put("x")

        def job(sim):
            item = yield from store.get()
            return item

        assert sim.run_until_complete(sim.spawn(job(sim))) == "x"

    def test_get_blocks_until_put(self, sim):
        store = Store(sim)

        def job(sim):
            item = yield from store.get()
            return (sim.now, item)

        p = sim.spawn(job(sim))
        sim.schedule(6, lambda: store.put("late"))
        assert sim.run_until_complete(p) == (6, "late")

    def test_fifo_item_order(self, sim):
        store = Store(sim)
        for i in range(4):
            store.put(i)
        got = []

        def job(sim):
            for _ in range(4):
                got.append((yield from store.get()))

        sim.spawn(job(sim))
        sim.run()
        assert got == [0, 1, 2, 3]

    def test_fifo_getter_order(self, sim):
        store = Store(sim)
        got = []

        def job(sim, name):
            item = yield from store.get()
            got.append((name, item))

        sim.spawn(job(sim, "first"))
        sim.spawn(job(sim, "second"))
        sim.schedule(1, lambda: store.put("a"))
        sim.schedule(2, lambda: store.put("b"))
        sim.run()
        assert got == [("first", "a"), ("second", "b")]

    def test_try_get(self, sim):
        store = Store(sim)
        assert store.try_get() is None
        store.put(5)
        assert store.try_get() == 5

    def test_len_and_peek(self, sim):
        store = Store(sim)
        store.put(1)
        store.put(2)
        assert len(store) == 2
        assert store.peek_all() == [1, 2]


class TestChannel:
    def test_predicate_matching_buffered(self, sim):
        ch = Channel(sim)
        ch.put({"tag": 1})
        ch.put({"tag": 2})

        def job(sim):
            m = yield from ch.get(lambda m: m["tag"] == 2)
            return m

        assert sim.run_until_complete(sim.spawn(job(sim)))["tag"] == 2
        assert len(ch) == 1  # tag 1 still buffered

    def test_predicate_matching_waiting_getter(self, sim):
        ch = Channel(sim)
        got = []

        def job(sim, tag):
            m = yield from ch.get(lambda m, tag=tag: m["tag"] == tag)
            got.append((tag, sim.now))

        sim.spawn(job(sim, 5))
        sim.spawn(job(sim, 3))
        sim.schedule(1, lambda: ch.put({"tag": 3}))
        sim.schedule(2, lambda: ch.put({"tag": 5}))
        sim.run()
        assert got == [(3, 1), (5, 2)]

    def test_unmatched_put_buffers(self, sim):
        ch = Channel(sim)

        def job(sim):
            yield from ch.get(lambda m: m == "wanted")

        sim.spawn(job(sim))
        sim.schedule(1, lambda: ch.put("unwanted"))
        sim.run()
        assert len(ch) == 1

    def test_none_predicate_matches_anything(self, sim):
        ch = Channel(sim)
        ch.put("anything")

        def job(sim):
            return (yield from ch.get())

        assert sim.run_until_complete(sim.spawn(job(sim))) == "anything"

    def test_fifo_among_equal_matchers(self, sim):
        """MPI non-overtaking: first-posted matching receive wins."""
        ch = Channel(sim)
        got = []

        def job(sim, name):
            m = yield from ch.get(lambda m: True)
            got.append((name, m))

        sim.spawn(job(sim, "r0"))
        sim.spawn(job(sim, "r1"))
        sim.schedule(1, lambda: ch.put("m0"))
        sim.schedule(1, lambda: ch.put("m1"))
        sim.run()
        assert got == [("r0", "m0"), ("r1", "m1")]

    def test_try_get_with_predicate(self, sim):
        ch = Channel(sim)
        ch.put(10)
        ch.put(20)
        assert ch.try_get(lambda x: x > 15) == 20
        assert ch.try_get(lambda x: x > 15) is None
        assert ch.try_get() == 10
