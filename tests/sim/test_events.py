"""Tests for Event, Timeout, AnyOf, AllOf."""

import pytest

from repro.sim import AllOf, AnyOf, Event, EventError, Simulator, Timeout


@pytest.fixture
def sim():
    return Simulator()


class TestEvent:
    def test_starts_pending(self, sim):
        ev = sim.event()
        assert not ev.triggered
        assert not ev.processed

    def test_value_before_trigger_raises(self, sim):
        with pytest.raises(EventError):
            sim.event().value

    def test_ok_before_trigger_raises(self, sim):
        with pytest.raises(EventError):
            sim.event().ok

    def test_succeed_sets_value(self, sim):
        ev = sim.event().succeed(99)
        assert ev.triggered
        assert ev.ok
        assert ev.value == 99
        assert ev.exception is None

    def test_double_succeed_raises(self, sim):
        ev = sim.event().succeed()
        with pytest.raises(EventError):
            ev.succeed()

    def test_fail_records_exception(self, sim):
        boom = ValueError("x")
        ev = sim.event().fail(boom)
        assert ev.triggered
        assert not ev.ok
        assert ev.exception is boom
        with pytest.raises(ValueError):
            ev.value

    def test_fail_requires_exception_instance(self, sim):
        with pytest.raises(TypeError):
            sim.event().fail("not an exception")

    def test_callback_runs_after_trigger(self, sim):
        ev = sim.event()
        hits = []
        ev.add_callback(lambda e: hits.append(e.value))
        sim.schedule(2, lambda: ev.succeed("v"))
        sim.run()
        assert hits == ["v"]
        assert ev.processed

    def test_late_callback_still_runs(self, sim):
        ev = sim.event()
        sim.schedule(1, lambda: ev.succeed(7))
        sim.run()
        hits = []
        ev.add_callback(lambda e: hits.append(e.value))
        sim.run()
        assert hits == [7]

    def test_trigger_alias(self, sim):
        ev = sim.event().trigger(5)
        assert ev.value == 5


class TestTimeout:
    def test_triggers_at_delay(self, sim):
        t = sim.timeout(3.0, value="tick")
        sim.run()
        assert t.triggered
        assert t.value == "tick"
        assert sim.now == 3.0

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(ValueError):
            Timeout(sim, -0.5)

    def test_zero_delay(self, sim):
        t = sim.timeout(0)
        sim.run()
        assert t.triggered
        assert sim.now == 0


class TestAnyOf:
    def test_triggers_on_first_child(self, sim):
        a, b = sim.timeout(5, "a"), sim.timeout(2, "b")
        cond = AnyOf(sim, [a, b])
        sim.run_until_complete(cond)
        assert sim.now == 2
        assert cond.value == ["b"]

    def test_empty_succeeds_immediately(self, sim):
        cond = AnyOf(sim, [])
        assert cond.triggered
        assert cond.value == []

    def test_child_failure_fails_condition(self, sim):
        a = sim.event()
        cond = AnyOf(sim, [a, sim.timeout(10)])
        sim.schedule(1, lambda: a.fail(RuntimeError("bad")))
        with pytest.raises(RuntimeError, match="bad"):
            sim.run_until_complete(cond)

    def test_mixed_simulators_rejected(self, sim):
        other = Simulator()
        with pytest.raises(ValueError):
            AnyOf(sim, [sim.event(), other.event()])


class TestAllOf:
    def test_waits_for_all_children(self, sim):
        a, b, c = sim.timeout(1, "a"), sim.timeout(5, "b"), sim.timeout(3, "c")
        cond = AllOf(sim, [a, b, c])
        sim.run_until_complete(cond)
        assert sim.now == 5
        assert cond.value == ["a", "b", "c"]  # construction order

    def test_empty_succeeds_immediately(self, sim):
        cond = AllOf(sim, [])
        assert cond.triggered

    def test_child_failure_fails_early(self, sim):
        a = sim.event()
        slow = sim.timeout(100)
        cond = AllOf(sim, [a, slow])
        sim.schedule(1, lambda: a.fail(KeyError("k")))
        with pytest.raises(KeyError):
            sim.run_until_complete(cond)
        assert sim.now == 1

    def test_already_triggered_children(self, sim):
        a = sim.event().succeed(1)
        b = sim.event().succeed(2)
        cond = AllOf(sim, [a, b])
        sim.run_until_complete(cond)
        assert cond.value == [1, 2]
