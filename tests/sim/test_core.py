"""Tests for the simulator event loop."""

import pytest

from repro.sim import SimulationError, Simulator


def test_initial_time_defaults_to_zero():
    assert Simulator().now == 0.0


def test_initial_time_can_be_set():
    assert Simulator(start_time=42.0).now == 42.0


def test_schedule_runs_callback_at_delay():
    sim = Simulator()
    seen = []
    sim.schedule(3.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [3.5]


def test_schedule_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule(-1.0, lambda: None)


def test_callbacks_run_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(5, lambda: order.append("b"))
    sim.schedule(1, lambda: order.append("a"))
    sim.schedule(9, lambda: order.append("c"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_equal_times_run_in_scheduling_order():
    sim = Simulator()
    order = []
    for i in range(10):
        sim.schedule(1.0, lambda i=i: order.append(i))
    sim.run()
    assert order == list(range(10))


def test_zero_delay_callback_runs_at_current_time():
    sim = Simulator()
    times = []

    def outer():
        sim.schedule(0, lambda: times.append(sim.now))

    sim.schedule(2.0, outer)
    sim.run()
    assert times == [2.0]


def test_run_until_stops_clock_at_limit():
    sim = Simulator()
    seen = []
    sim.schedule(1, lambda: seen.append(1))
    sim.schedule(10, lambda: seen.append(10))
    stopped = sim.run(until=5)
    assert stopped == 5
    assert seen == [1]
    # remaining work still runs on a later run()
    sim.run()
    assert seen == [1, 10]


def test_run_returns_final_time():
    sim = Simulator()
    sim.schedule(7, lambda: None)
    assert sim.run() == 7


def test_step_returns_false_on_empty_heap():
    assert Simulator().step() is False


def test_nested_scheduling_from_callback():
    sim = Simulator()
    hits = []

    def chain(n):
        hits.append((sim.now, n))
        if n:
            sim.schedule(1.0, lambda: chain(n - 1))

    sim.schedule(0, lambda: chain(3))
    sim.run()
    assert hits == [(0.0, 3), (1.0, 2), (2.0, 1), (3.0, 0)]


def test_run_until_complete_returns_event_value():
    sim = Simulator()
    ev = sim.event()
    sim.schedule(4, lambda: ev.succeed("done"))
    assert sim.run_until_complete(ev) == "done"
    assert sim.now == 4


def test_run_until_complete_detects_deadlock():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(SimulationError, match="deadlock"):
        sim.run_until_complete(ev)


def test_run_until_complete_respects_limit():
    sim = Simulator()
    ev = sim.event()
    sim.schedule(100, lambda: ev.succeed())
    with pytest.raises(SimulationError, match="limit"):
        sim.run_until_complete(ev, limit=10)


def test_run_until_complete_raises_event_failure():
    sim = Simulator()
    ev = sim.event()
    sim.schedule(1, lambda: ev.fail(RuntimeError("boom")))
    with pytest.raises(RuntimeError, match="boom"):
        sim.run_until_complete(ev)


def test_pending_count_tracks_heap():
    sim = Simulator()
    assert sim.pending_count() == 0
    sim.schedule(1, lambda: None)
    sim.schedule(2, lambda: None)
    assert sim.pending_count() == 2
    sim.run()
    assert sim.pending_count() == 0


def test_reentrant_run_rejected():
    sim = Simulator()

    def reenter():
        with pytest.raises(SimulationError):
            sim.run()

    sim.schedule(0, reenter)
    sim.run()
