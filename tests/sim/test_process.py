"""Tests for generator-coroutine processes."""

import pytest

from repro.sim import Interrupt, ProcessKilled, Simulator


@pytest.fixture
def sim():
    return Simulator()


def test_process_runs_and_returns_value(sim):
    def job(sim):
        yield sim.timeout(2)
        yield sim.timeout(3)
        return "result"

    proc = sim.spawn(job(sim))
    assert sim.run_until_complete(proc) == "result"
    assert sim.now == 5


def test_spawn_requires_generator(sim):
    with pytest.raises(TypeError, match="generator"):
        sim.spawn(lambda: None)


def test_process_receives_event_value(sim):
    def job(sim, ev):
        got = yield ev
        return got

    ev = sim.event()
    proc = sim.spawn(job(sim, ev))
    sim.schedule(1, lambda: ev.succeed(123))
    assert sim.run_until_complete(proc) == 123


def test_process_exception_fails_process_event(sim):
    def job(sim):
        yield sim.timeout(1)
        raise ValueError("inner")

    proc = sim.spawn(job(sim))
    with pytest.raises(ValueError, match="inner"):
        sim.run_until_complete(proc)
    assert proc.triggered and not proc.ok


def test_failed_event_is_thrown_into_process(sim):
    def job(sim, ev):
        try:
            yield ev
        except RuntimeError as err:
            return f"caught {err}"

    ev = sim.event()
    proc = sim.spawn(job(sim, ev))
    sim.schedule(1, lambda: ev.fail(RuntimeError("net down")))
    assert sim.run_until_complete(proc) == "caught net down"


def test_yielding_non_event_fails_with_type_error(sim):
    def job(sim):
        yield 42

    proc = sim.spawn(job(sim))
    with pytest.raises(TypeError, match="yield Event"):
        sim.run_until_complete(proc)


def test_yield_from_subroutine_composition(sim):
    def step(sim, dt):
        yield sim.timeout(dt)
        return dt * 10

    def job(sim):
        a = yield from step(sim, 1)
        b = yield from step(sim, 2)
        return a + b

    proc = sim.spawn(job(sim))
    assert sim.run_until_complete(proc) == 30
    assert sim.now == 3


def test_process_is_waitable_by_other_processes(sim):
    def child(sim):
        yield sim.timeout(4)
        return "child-done"

    def parent(sim):
        c = sim.spawn(child(sim))
        got = yield c
        return f"saw {got}"

    proc = sim.spawn(parent(sim))
    assert sim.run_until_complete(proc) == "saw child-done"


def test_two_processes_interleave_deterministically(sim):
    log = []

    def worker(sim, name, dt):
        for _ in range(3):
            yield sim.timeout(dt)
            log.append((sim.now, name))

    sim.spawn(worker(sim, "fast", 1))
    sim.spawn(worker(sim, "slow", 2))
    sim.run()
    # At t=2 both wake; "slow" scheduled its timeout earlier (at t=0 vs
    # t=1), so it holds the lower heap sequence number and runs first.
    assert log == [
        (1, "fast"),
        (2, "slow"),
        (2, "fast"),
        (3, "fast"),
        (4, "slow"),
        (6, "slow"),
    ]


def test_interrupt_is_catchable_and_process_continues(sim):
    def job(sim):
        try:
            yield sim.timeout(100)
        except Interrupt as irq:
            assert irq.cause == "hurry"
        yield sim.timeout(1)
        return "after-interrupt"

    proc = sim.spawn(job(sim))
    sim.schedule(5, lambda: proc.interrupt("hurry"))
    assert sim.run_until_complete(proc) == "after-interrupt"
    assert sim.now == 6


def test_interrupted_wait_does_not_double_resume(sim):
    """The stale wakeup from the abandoned event must be dropped."""

    def job(sim, ev):
        try:
            yield ev
        except Interrupt:
            pass
        yield sim.timeout(10)
        return "ok"

    ev = sim.event()
    proc = sim.spawn(job(sim, ev))
    sim.schedule(1, lambda: proc.interrupt())
    sim.schedule(2, lambda: ev.succeed("late"))  # must be ignored by proc
    assert sim.run_until_complete(proc) == "ok"
    assert sim.now == 11


def test_interrupt_after_completion_is_noop(sim):
    def job(sim):
        yield sim.timeout(1)

    proc = sim.spawn(job(sim))
    sim.run()
    proc.interrupt()  # should not raise
    sim.run()
    assert proc.ok


def test_kill_terminates_process(sim):
    reached = []

    def job(sim):
        yield sim.timeout(100)
        reached.append(True)

    proc = sim.spawn(job(sim))
    sim.schedule(3, proc.kill)
    sim.run()
    assert proc.triggered and not proc.ok
    assert isinstance(proc.exception, ProcessKilled)
    assert not reached


def test_process_name_assigned(sim):
    def job(sim):
        yield sim.timeout(1)

    p = sim.spawn(job(sim), name="nic-engine")
    assert p.name == "nic-engine"
    q = sim.spawn(job(sim))
    assert q.name.startswith("proc-")


def test_immediate_return_process(sim):
    def job(sim):
        return "instant"
        yield  # pragma: no cover

    proc = sim.spawn(job(sim))
    assert sim.run_until_complete(proc) == "instant"
    assert sim.now == 0


def test_process_waiting_on_already_triggered_event(sim):
    ev = sim.event().succeed("pre")

    def job(sim):
        got = yield ev
        return got

    proc = sim.spawn(job(sim))
    assert sim.run_until_complete(proc) == "pre"


def test_unhandled_process_failure_crashes_run(sim):
    def job(sim):
        yield sim.timeout(1)
        raise RuntimeError("nobody is watching")

    sim.spawn(job(sim))
    with pytest.raises(RuntimeError, match="nobody is watching"):
        sim.run()


def test_waited_on_failure_is_not_unhandled(sim):
    def child(sim):
        yield sim.timeout(1)
        raise RuntimeError("seen")

    def parent(sim):
        try:
            yield sim.spawn(child(sim))
        except RuntimeError:
            return "handled"

    proc = sim.spawn(parent(sim))
    assert sim.run_until_complete(proc) == "handled"
    sim.run()  # the unhandled-check callback must not raise


def test_kill_is_never_unhandled(sim):
    def job(sim):
        yield sim.timeout(100)

    proc = sim.spawn(job(sim))
    sim.schedule(1, proc.kill)
    sim.run()  # must not raise
