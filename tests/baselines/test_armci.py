"""Tests for the ARMCI-style baseline (§VI semantics)."""

import numpy as np
import pytest

from repro.baselines import ArmciError
from repro.network import quadrics_like
from repro.runtime import World


class TestContiguous:
    def test_blocking_put_get_roundtrip(self):
        def program(ctx):
            alloc, ptrs = yield from ctx.armci.malloc(1024)
            result = None
            if ctx.rank == 1:
                src = ctx.mem.space.alloc(100)
                ctx.mem.store(src, 0, (np.arange(100) % 250).astype(np.uint8))
                yield from ctx.armci.put(src, 0, ptrs[0], 50, 100)
                yield from ctx.armci.fence(ptrs[0])
                dst = ctx.mem.space.alloc(100)
                yield from ctx.armci.get(dst, 0, ptrs[0], 50, 100)
                result = ctx.mem.load(dst, 0, 100).tolist()
            yield from ctx.comm.barrier()
            return result

        out = World(n_ranks=2).run(program)
        assert out[1] == [i % 250 for i in range(100)]

    def test_blocking_puts_are_ordered_even_on_unordered_fabric(self):
        """§VI: 'All blocking operations are ordered by the library.'"""

        def program(ctx):
            alloc, ptrs = yield from ctx.armci.malloc(64)
            result = None
            if ctx.rank == 1:
                a = ctx.mem.space.alloc(8, fill=1)
                b = ctx.mem.space.alloc(8, fill=2)
                yield from ctx.armci.put(a, 0, ptrs[0], 0, 8)
                yield from ctx.armci.put(b, 0, ptrs[0], 0, 8)
                yield from ctx.armci.all_fence()
                yield from ctx.comm.send("go", dest=0)
            elif ctx.rank == 0:
                yield from ctx.comm.recv(source=1)
                result = ctx.mem.load(alloc, 0, 8).tolist()
            yield from ctx.comm.barrier()
            return result

        for seed in range(10):
            out = World(n_ranks=2, network=quadrics_like(), seed=seed).run(
                program
            )
            assert out[0] == [2] * 8, f"seed {seed}: ordering violated"

    def test_nonblocking_returns_handle(self):
        def program(ctx):
            alloc, ptrs = yield from ctx.armci.malloc(64)
            result = None
            if ctx.rank == 1:
                src = ctx.mem.space.alloc(8, fill=6)
                h = yield from ctx.armci.nb_put(src, 0, ptrs[0], 0, 8)
                yield from ctx.armci.wait(h)
                yield from ctx.armci.fence(ptrs[0])
                dst = ctx.mem.space.alloc(8)
                h2 = yield from ctx.armci.nb_get(dst, 0, ptrs[0], 0, 8)
                yield from ctx.armci.wait_all([h2])
                result = ctx.mem.load(dst, 0, 8).tolist()
            yield from ctx.comm.barrier()
            return result

        assert World(n_ranks=2).run(program)[1] == [6] * 8


class TestStrided:
    def test_put_strided_lands_in_pattern(self):
        def program(ctx):
            alloc, ptrs = yield from ctx.armci.malloc(256)
            result = None
            if ctx.rank == 1:
                src = ctx.mem.space.alloc(64)
                ctx.mem.store(src, 0, np.arange(64, dtype=np.uint8))
                # 4 blocks of 8 bytes: tight at origin, spread at target
                yield from ctx.armci.put_strided(
                    src, 0, 8, ptrs[0], 0, 16, block=8, count=4
                )
                yield from ctx.armci.fence(ptrs[0])
                yield from ctx.comm.send("go", dest=0)
            elif ctx.rank == 0:
                yield from ctx.comm.recv(source=1)
                result = ctx.mem.load(alloc, 0, 64).tolist()
            yield from ctx.comm.barrier()
            return result

        out = World(n_ranks=2).run(program)
        got = out[0]
        for b in range(4):
            assert got[b * 16 : b * 16 + 8] == list(range(b * 8, b * 8 + 8))
            assert got[b * 16 + 8 : b * 16 + 16] == [0] * 8

    def test_get_strided(self):
        def program(ctx):
            alloc, ptrs = yield from ctx.armci.malloc(64)
            if ctx.rank == 0:
                ctx.mem.store(alloc, 0, np.arange(64, dtype=np.uint8))
            yield from ctx.comm.barrier()
            result = None
            if ctx.rank == 1:
                dst = ctx.mem.space.alloc(16)
                yield from ctx.armci.get_strided(
                    dst, 0, 4, ptrs[0], 0, 16, block=4, count=4
                )
                result = ctx.mem.load(dst, 0, 16).tolist()
            yield from ctx.comm.barrier()
            return result

        out = World(n_ranks=2).run(program)
        assert out[1] == [0, 1, 2, 3, 16, 17, 18, 19, 32, 33, 34, 35,
                          48, 49, 50, 51]


class TestVector:
    def test_put_vector_chunks(self):
        def program(ctx):
            alloc, ptrs = yield from ctx.armci.malloc(64)
            result = None
            if ctx.rank == 1:
                src = ctx.mem.space.alloc(16)
                ctx.mem.store(src, 0, np.arange(16, dtype=np.uint8))
                yield from ctx.armci.put_vector(
                    src, [(0, 4), (8, 4)], ptrs[0], [(10, 4), (20, 4)]
                )
                yield from ctx.armci.fence(ptrs[0])
                yield from ctx.comm.send("go", dest=0)
            elif ctx.rank == 0:
                yield from ctx.comm.recv(source=1)
                result = ctx.mem.load(alloc, 0, 32).tolist()
            yield from ctx.comm.barrier()
            return result

        got = World(n_ranks=2).run(program)[0]
        assert got[10:14] == [0, 1, 2, 3]
        assert got[20:24] == [8, 9, 10, 11]

    def test_vector_length_mismatch_rejected(self):
        def program(ctx):
            alloc, ptrs = yield from ctx.armci.malloc(64)
            if ctx.rank == 1:
                src = ctx.mem.space.alloc(16)
                yield from ctx.armci.put_vector(
                    src, [(0, 4)], ptrs[0], [(0, 8)]
                )

        with pytest.raises(ArmciError, match="lengths differ"):
            World(n_ranks=2).run(program)


class TestAccumulate:
    def test_daxpy_accumulate(self):
        def program(ctx):
            alloc, ptrs = yield from ctx.armci.malloc(64)
            if ctx.rank == 0:
                ctx.mem.space.view(alloc, "float64")[:4] = [1, 2, 3, 4]
            yield from ctx.comm.barrier()
            if ctx.rank == 1:
                src = ctx.mem.space.alloc(32)
                ctx.mem.space.view(src, "float64")[:4] = [10, 10, 10, 10]
                yield from ctx.armci.acc(src, 0, ptrs[0], 0, 4, scale=2.0)
                yield from ctx.armci.fence(ptrs[0])
                yield from ctx.comm.send("go", dest=0)
                yield from ctx.comm.barrier()
                return None
            yield from ctx.comm.recv(source=1)
            result = ctx.mem.space.view(alloc, "float64")[:4].tolist()
            yield from ctx.comm.barrier()
            return result

        assert World(n_ranks=2).run(program)[0] == [21, 22, 23, 24]

    def test_concurrent_accumulates_serialized(self):
        """§VI: 'Accumulate operations are serialized.'"""

        def program(ctx):
            alloc, ptrs = yield from ctx.armci.malloc(8)
            if ctx.rank != 0:
                src = ctx.mem.space.alloc(8)
                ctx.mem.space.view(src, "float64")[0] = 1.0
                for _ in range(10):
                    yield from ctx.armci.acc(src, 0, ptrs[0], 0, 1)
            yield from ctx.comm.barrier()
            yield from ctx.armci.all_fence()
            if ctx.rank == 0:
                return float(ctx.mem.space.view(alloc, "float64")[0])

        out = World(n_ranks=4).run(program)
        assert out[0] == 30.0
