"""Tests for the GASNet-style baseline (§VI semantics)."""

import numpy as np
import pytest

from repro.baselines import GasnetError
from repro.baselines.gasnet import MAX_MEDIUM
from repro.network import generic_rdma, seastar_portals
from repro.runtime import World


class TestAvailability:
    def test_not_built_without_active_messages(self):
        """Portals on the XT has no AMs (§III-B1): no GASNet frontend."""
        w = World(n_ranks=2, network=seastar_portals())
        assert w.contexts[0].gasnet is None

    def test_built_on_am_capable_fabric(self):
        w = World(n_ranks=2, network=generic_rdma())
        assert w.contexts[0].gasnet is not None


class TestActiveMessages:
    def test_short_am_runs_handler(self):
        def program(ctx):
            hits = []
            ctx.gasnet.register_handler(1, lambda src, a, b: hits.append((src, a, b)))
            yield from ctx.comm.barrier()
            if ctx.rank == 1:
                yield from ctx.gasnet.am_short(0, 1, 10, 20)
            yield from ctx.comm.barrier()
            yield ctx.sim.timeout(50)  # let handlers drain
            return hits

        out = World(n_ranks=2).run(program)
        assert out[0] == [(1, 10, 20)]

    def test_short_am_with_reply(self):
        def program(ctx):
            ctx.gasnet.register_handler(2, lambda src, x: x * x)
            yield from ctx.comm.barrier()
            result = None
            if ctx.rank == 1:
                result = yield from ctx.gasnet.am_short(
                    0, 2, 7, want_reply=True
                )
            yield from ctx.comm.barrier()
            return result

        assert World(n_ranks=2).run(program)[1] == 49

    def test_medium_am_delivers_payload(self):
        def program(ctx):
            got = []
            ctx.gasnet.register_handler(
                3, lambda src, data: got.append(data.tolist())
            )
            yield from ctx.comm.barrier()
            if ctx.rank == 1:
                yield from ctx.gasnet.am_medium(
                    0, 3, np.array([1, 2, 3], dtype=np.uint8),
                    want_reply=True,
                )
            yield from ctx.comm.barrier()
            return got

        out = World(n_ranks=2).run(program)
        assert out[0] == [[1, 2, 3]]

    def test_medium_am_size_cap(self):
        def program(ctx):
            ctx.gasnet.register_handler(1, lambda src, data: None)
            yield from ctx.comm.barrier()
            if ctx.rank == 1:
                yield from ctx.gasnet.am_medium(
                    0, 1, np.zeros(MAX_MEDIUM + 1, dtype=np.uint8)
                )

        with pytest.raises(GasnetError, match="MAX_MEDIUM"):
            World(n_ranks=2).run(program)

    def test_long_am_deposits_into_segment(self):
        def program(ctx):
            seg = yield from ctx.gasnet.attach(1024)
            ctx.gasnet.register_handler(4, lambda src, data: len(data))
            yield from ctx.comm.barrier()
            result = None
            if ctx.rank == 1:
                n = yield from ctx.gasnet.am_long(
                    0, 4, np.full(100, 9, dtype=np.uint8), 200,
                    want_reply=True,
                )
                result = n
            yield from ctx.comm.barrier()
            if ctx.rank == 0:
                return ctx.mem.load(seg, 200, 100).tolist()
            return result

        out = World(n_ranks=2).run(program)
        assert out[0] == [9] * 100
        assert out[1] == 100

    def test_long_am_outside_segment_rejected(self):
        def program(ctx):
            yield from ctx.gasnet.attach(64)
            ctx.gasnet.register_handler(1, lambda src, data: None)
            yield from ctx.comm.barrier()
            if ctx.rank == 1:
                yield from ctx.gasnet.am_long(
                    0, 1, np.zeros(100, dtype=np.uint8), 0
                )

        with pytest.raises(GasnetError, match="outside the target segment"):
            World(n_ranks=2).run(program)

    def test_unregistered_handler_errors(self):
        def program(ctx):
            yield from ctx.comm.barrier()
            if ctx.rank == 1:
                yield from ctx.gasnet.am_short(0, 99, want_reply=True)
            yield from ctx.comm.barrier()

        with pytest.raises(GasnetError, match="no AM handler"):
            World(n_ranks=2).run(program)

    def test_duplicate_handler_rejected(self):
        def program(ctx):
            ctx.gasnet.register_handler(1, lambda src: None)
            ctx.gasnet.register_handler(1, lambda src: None)
            return None
            yield  # pragma: no cover

        with pytest.raises(GasnetError, match="already registered"):
            World(n_ranks=1).run(program)


class TestExtendedApi:
    def test_put_get_roundtrip_through_segments(self):
        def program(ctx):
            yield from ctx.gasnet.attach(4096)
            result = None
            if ctx.rank == 1:
                src = ctx.mem.space.alloc(256)
                ctx.mem.store(src, 0, (np.arange(256) % 256).astype(np.uint8))
                yield from ctx.gasnet.put(0, 100, src, 0, 256)
                # GASNet blocking put is locally complete only; sync via
                # a get of the same region (gets are remotely complete)
                dst = ctx.mem.space.alloc(256)
                yield from ctx.gasnet.get(0, 100, dst, 0, 256)
                result = ctx.mem.load(dst, 0, 256).tolist()
            yield from ctx.comm.barrier()
            return result

        out = World(n_ranks=2).run(program)
        assert out[1] == list(range(256))

    def test_nb_explicit_handles(self):
        def program(ctx):
            yield from ctx.gasnet.attach(1024)
            result = None
            if ctx.rank == 1:
                src = ctx.mem.space.alloc(64, fill=3)
                h = yield from ctx.gasnet.put_nb(0, 0, src, 0, 64)
                yield from ctx.gasnet.wait_syncnb(h)
                dst = ctx.mem.space.alloc(64)
                h2 = yield from ctx.gasnet.get_nb(0, 0, dst, 0, 64)
                yield from ctx.gasnet.wait_syncnb(h2)
                result = ctx.mem.load(dst, 0, 64).tolist()
            yield from ctx.comm.barrier()
            return result

        assert World(n_ranks=2).run(program)[1] == [3] * 64

    def test_nbi_implicit_handles(self):
        def program(ctx):
            yield from ctx.gasnet.attach(1024)
            result = None
            if ctx.rank == 1:
                src = ctx.mem.space.alloc(32, fill=4)
                for i in range(4):
                    yield from ctx.gasnet.put_nbi(0, i * 32, src, 0, 32)
                yield from ctx.gasnet.wait_syncnbi()
                dst = ctx.mem.space.alloc(128)
                yield from ctx.gasnet.get_nbi(0, 0, dst, 0, 128)
                yield from ctx.gasnet.wait_syncnbi()
                result = ctx.mem.load(dst, 0, 128).tolist()
            yield from ctx.comm.barrier()
            return result

        assert World(n_ranks=2).run(program)[1] == [4] * 128

    def test_extended_api_requires_attach(self):
        def program(ctx):
            src = ctx.mem.space.alloc(8)
            yield from ctx.gasnet.put(0, 0, src, 0, 8)

        with pytest.raises(GasnetError, match="gasnet_attach"):
            World(n_ranks=2).run(program)

    def test_double_attach_rejected(self):
        def program(ctx):
            yield from ctx.gasnet.attach(64)
            yield from ctx.gasnet.attach(64)

        with pytest.raises(GasnetError, match="already attached"):
            World(n_ranks=2).run(program)
