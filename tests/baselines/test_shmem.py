"""Tests for the SHMEM-style baseline (symmetric heap semantics)."""

import numpy as np
import pytest

from repro.baselines import ShmemError
from repro.network import quadrics_like
from repro.runtime import World


class TestSymmetricHeap:
    def test_malloc_is_collective_and_symmetric(self):
        def program(ctx):
            sym = yield from ctx.shmem.shmem_malloc(256)
            # the same handle is valid toward every PE
            yield from ctx.shmem.p(sym, 0, ctx.rank + 1,
                                   pe=(ctx.rank + 1) % ctx.size)
            yield from ctx.shmem.barrier_all()
            return int(ctx.shmem.local_view(sym, "int64")[0])

        out = World(n_ranks=4).run(program)
        assert out == [4, 1, 2, 3]

    def test_free_then_use_rejected(self):
        def program(ctx):
            sym = yield from ctx.shmem.shmem_malloc(64)
            yield from ctx.shmem.shmem_free(sym)
            yield from ctx.shmem.get(sym, 0, 8, pe=0)

        with pytest.raises(ShmemError, match="not a live symmetric"):
            World(n_ranks=2).run(program)

    def test_my_pe_n_pes(self):
        def program(ctx):
            return (ctx.shmem.my_pe, ctx.shmem.n_pes)
            yield  # pragma: no cover

        assert World(n_ranks=3).run(program) == [(0, 3), (1, 3), (2, 3)]


class TestPutGet:
    def test_putmem_getmem_roundtrip(self):
        def program(ctx):
            sym = yield from ctx.shmem.shmem_malloc(128)
            result = None
            if ctx.rank == 1:
                yield from ctx.shmem.put(
                    sym, 16, np.arange(32, dtype=np.uint8), pe=0
                )
                yield from ctx.shmem.quiet()
                got = yield from ctx.shmem.get(sym, 16, 32, pe=0)
                result = got.tolist()
            yield from ctx.shmem.barrier_all()
            return result

        assert World(n_ranks=2).run(program)[1] == list(range(32))

    def test_typed_p_and_g(self):
        def program(ctx):
            sym = yield from ctx.shmem.shmem_malloc(64)
            result = None
            if ctx.rank == 1:
                yield from ctx.shmem.p(sym, 2, 3.5, pe=0, dtype="float64")
                yield from ctx.shmem.quiet()
                result = yield from ctx.shmem.g(sym, 2, pe=0, dtype="float64")
            yield from ctx.shmem.barrier_all()
            return result

        assert World(n_ranks=2).run(program)[1] == 3.5


class TestFenceQuiet:
    def test_fence_orders_puts_on_unordered_fabric(self):
        def program(ctx):
            sym = yield from ctx.shmem.shmem_malloc(16)
            result = None
            if ctx.rank == 1:
                yield from ctx.shmem.put(sym, 0, np.full(8, 1, np.uint8), pe=0)
                yield from ctx.shmem.fence()
                yield from ctx.shmem.put(sym, 0, np.full(8, 2, np.uint8), pe=0)
                yield from ctx.shmem.quiet()
                yield from ctx.comm.send("done", dest=0)
            elif ctx.rank == 0:
                yield from ctx.comm.recv(source=1)
                result = int(ctx.shmem.local_view(sym)[0])
            yield from ctx.comm.barrier()
            return result

        for seed in range(8):
            out = World(n_ranks=2, network=quadrics_like(), seed=seed).run(
                program
            )
            assert out[0] == 2, f"seed {seed}"

    def test_quiet_gives_remote_visibility(self):
        def program(ctx):
            sym = yield from ctx.shmem.shmem_malloc(8)
            result = None
            if ctx.rank == 1:
                yield from ctx.shmem.put(sym, 0, np.full(8, 9, np.uint8), pe=0)
                yield from ctx.shmem.quiet()
                yield from ctx.comm.send("go", dest=0)
            elif ctx.rank == 0:
                yield from ctx.comm.recv(source=1)
                result = ctx.shmem.local_view(sym).tolist()
            yield from ctx.comm.barrier()
            return result

        assert World(n_ranks=2).run(program)[0] == [9] * 8


class TestAtomics:
    def test_fetch_inc_counts(self):
        def program(ctx):
            sym = yield from ctx.shmem.shmem_malloc(8)
            yield from ctx.shmem.barrier_all()
            fetched = []
            for _ in range(4):
                v = yield from ctx.shmem.atomic_fetch_inc(sym, 0, pe=0)
                fetched.append(int(v))
            yield from ctx.shmem.barrier_all()
            if ctx.rank == 0:
                return (int(ctx.shmem.local_view(sym, "int64")[0]), fetched)
            return (None, fetched)

        out = World(n_ranks=3).run(program)
        assert out[0][0] == 12
        all_f = sorted(v for _, f in out for v in f)
        assert all_f == list(range(12))

    def test_cswap(self):
        def program(ctx):
            sym = yield from ctx.shmem.shmem_malloc(8)
            yield from ctx.shmem.barrier_all()
            old = None
            if ctx.rank != 0:
                old = yield from ctx.shmem.atomic_cswap(
                    sym, 0, cond=0, value=ctx.rank, pe=0
                )
            yield from ctx.shmem.barrier_all()
            if ctx.rank == 0:
                return int(ctx.shmem.local_view(sym, "int64")[0])
            return int(old)

        out = World(n_ranks=3).run(program)
        winner = out[0]
        assert winner in (1, 2)
        assert sorted(out[1:]) == sorted([0, winner])


class TestWaitUntil:
    def test_flag_synchronization_idiom(self):
        """Producer puts data then sets the flag; consumer spins."""

        def program(ctx):
            data = yield from ctx.shmem.shmem_malloc(64)
            flag = yield from ctx.shmem.shmem_malloc(8)
            result = None
            if ctx.rank == 1:
                yield from ctx.shmem.put(
                    data, 0, np.full(64, 5, np.uint8), pe=0
                )
                yield from ctx.shmem.fence()  # data before flag
                yield from ctx.shmem.p(flag, 0, 1, pe=0)
                yield from ctx.shmem.quiet()
            elif ctx.rank == 0:
                yield from ctx.shmem.wait_until(flag, 0, 1)
                result = ctx.shmem.local_view(data).tolist()
            yield from ctx.comm.barrier()
            return result

        out = World(n_ranks=2).run(program)
        assert out[0] == [5] * 64
