"""Extra coverage: request edge cases and communicator interplay."""

import numpy as np
import pytest

from repro.ga import GlobalArray
from repro.mpi import Request, Status
from repro.runtime import World
from repro.sim import Simulator


class TestRequestEdges:
    def test_waitall_empty_list(self):
        def program(ctx):
            out = yield from Request.waitall([])
            return out

        assert World(n_ranks=1).run(program) == [[]]

    def test_waitany_empty_rejected(self):
        def program(ctx):
            yield from Request.waitany([])

        with pytest.raises(ValueError, match="empty"):
            World(n_ranks=1).run(program)

    def test_waitany_already_complete_returns_immediately(self):
        def program(ctx):
            if ctx.rank == 0:
                yield from ctx.comm.send("x", dest=1)
            else:
                req = ctx.comm.irecv(source=0)
                yield from req.wait()
                slow = ctx.comm.irecv(source=0, tag=5)  # never satisfied
                idx = yield from Request.waitany([slow, req])
                return idx

        assert World(n_ranks=2).run(program)[1] == 1

    def test_request_repr_states(self):
        sim = Simulator()
        r = Request(sim, kind="probe")
        assert "pending" in repr(r)
        r.event.succeed()
        assert "complete" in repr(r)

    def test_status_fields(self):
        st = Status(source=3, tag=7, nbytes=128)
        assert (st.source, st.tag, st.nbytes) == (3, 7, 128)


class TestCommExtra:
    def test_recv_status_translates_source_to_local_rank(self):
        def program(ctx):
            sub = yield from ctx.comm.split(color=ctx.rank % 2, key=ctx.rank)
            result = None
            # evens: world 0,2 -> sub-ranks 0,1
            if ctx.rank == 2:
                yield from sub.send("hello", dest=0, tag=4)
            elif ctx.rank == 0:
                obj, st = yield from sub.recv_status()
                result = (obj, st.source, st.tag)
            yield from ctx.comm.barrier()
            return result

        out = World(n_ranks=4).run(program)
        assert out[0] == ("hello", 1, 4)  # source is sub-rank 1, not 2

    def test_group_translation_helpers(self):
        from repro.mpi import Group

        g = Group([4, 2, 7])
        assert g.size == 3
        assert g.world_rank(1) == 2
        assert g.local_rank(7) == 2
        assert g.local_rank(99) is None
        assert 4 in g and 3 not in g
        with pytest.raises(ValueError):
            g.world_rank(5)
        with pytest.raises(ValueError):
            Group([1, 1])

    def test_comm_requires_membership(self):
        from repro.mpi import Comm, Group

        w = World(n_ranks=2)
        with pytest.raises(ValueError, match="not a member"):
            Comm(w.endpoints[0], Group([1]), context=("x",))


class TestGaOnSubcommunicator:
    def test_global_array_scoped_to_split_comm(self):
        """A GlobalArray over half the ranks; the other half never
        participates."""

        def program(ctx):
            sub = yield from ctx.comm.split(
                color=0 if ctx.rank < 2 else 1, key=ctx.rank
            )
            result = None
            if ctx.rank < 2:
                ga = yield from GlobalArray.create(ctx, (8,), comm=sub)
                if sub.rank == 0:
                    yield from ga.put(slice(0, 8), np.arange(8.0))
                yield from ga.sync()
                got = yield from ga.get(slice(0, 8))
                result = got.tolist()
            yield from ctx.comm.barrier()
            return result

        out = World(n_ranks=4).run(program)
        assert out[0] == list(np.arange(8.0))
        assert out[1] == list(np.arange(8.0))
        assert out[2] is None and out[3] is None
