"""Tests for point-to-point messaging."""

import numpy as np
import pytest

from repro.mpi import ANY_SOURCE, ANY_TAG, Request
from repro.network import quadrics_like, seastar_portals
from repro.runtime import World
from repro.sim import SimulationError


def test_send_recv_pair():
    def program(ctx):
        if ctx.rank == 0:
            yield from ctx.comm.send({"x": 41}, dest=1, tag=7)
            return None
        if ctx.rank == 1:
            data = yield from ctx.comm.recv(source=0, tag=7)
            return data["x"]
        return None

    assert World(n_ranks=2).run(program) == [None, 41]


def test_numpy_payload():
    def program(ctx):
        if ctx.rank == 0:
            yield from ctx.comm.send(np.arange(100), dest=1)
        else:
            data = yield from ctx.comm.recv(source=0)
            return int(data.sum())

    assert World(n_ranks=2).run(program)[1] == 4950


def test_any_source_any_tag():
    def program(ctx):
        if ctx.rank == 2:
            got = []
            for _ in range(2):
                obj, st = yield from ctx.comm.recv_status(ANY_SOURCE, ANY_TAG)
                got.append((st.source, st.tag, obj))
            return sorted(got)
        yield from ctx.comm.send(f"from-{ctx.rank}", dest=2, tag=ctx.rank)

    out = World(n_ranks=3).run(program)
    assert out[2] == [(0, 0, "from-0"), (1, 1, "from-1")]


def test_tag_selectivity():
    def program(ctx):
        if ctx.rank == 0:
            yield from ctx.comm.send("a", dest=1, tag=1)
            yield from ctx.comm.send("b", dest=1, tag=2)
        else:
            b = yield from ctx.comm.recv(source=0, tag=2)
            a = yield from ctx.comm.recv(source=0, tag=1)
            return (a, b)

    assert World(n_ranks=2).run(program)[1] == ("a", "b")


def test_non_overtaking_same_tag_on_ordered_network():
    def program(ctx):
        if ctx.rank == 0:
            for i in range(10):
                yield from ctx.comm.send(i, dest=1, tag=5)
        else:
            got = []
            for _ in range(10):
                got.append((yield from ctx.comm.recv(source=0, tag=5)))
            return got

    out = World(n_ranks=2, network=seastar_portals()).run(program)
    assert out[1] == list(range(10))


def test_isend_irecv_overlap():
    def program(ctx):
        if ctx.rank == 0:
            reqs = []
            for i in range(4):
                r = yield from ctx.comm.isend(i, dest=1, tag=i)
                reqs.append(r)
            yield from Request.waitall(reqs)
        else:
            reqs = [ctx.comm.irecv(source=0, tag=i) for i in range(4)]
            vals = yield from Request.waitall(reqs)
            return vals

    assert World(n_ranks=2).run(program)[1] == [0, 1, 2, 3]


def test_request_test_polls():
    def program(ctx):
        if ctx.rank == 0:
            yield from ctx.comm.send("x", dest=1)
        else:
            req = ctx.comm.irecv(source=0)
            assert not req.test()
            yield from req.wait()
            assert req.test()
            return req.status.nbytes

    World(n_ranks=2).run(program)


def test_waitany():
    def program(ctx):
        if ctx.rank == 0:
            yield ctx.sim.timeout(100)
            yield from ctx.comm.send("slow", dest=2, tag=0)
        elif ctx.rank == 1:
            yield from ctx.comm.send("fast", dest=2, tag=1)
        else:
            reqs = [ctx.comm.irecv(source=0, tag=0), ctx.comm.irecv(source=1, tag=1)]
            idx = yield from Request.waitany(reqs)
            return idx

    assert World(n_ranks=3).run(program)[2] == 1


def test_sendrecv_exchange():
    def program(ctx):
        partner = 1 - ctx.rank
        got = yield from ctx.comm.sendrecv(ctx.rank, dest=partner, source=partner)
        return got

    assert World(n_ranks=2).run(program) == [1, 0]


def test_unmatched_recv_deadlocks():
    def program(ctx):
        if ctx.rank == 0:
            yield from ctx.comm.recv(source=1, tag=9)

    with pytest.raises(SimulationError, match="never completed"):
        World(n_ranks=2).run(program)


def test_invalid_tag_rejected():
    def program(ctx):
        yield from ctx.comm.send("x", dest=0, tag=2**30)

    with pytest.raises(ValueError, match="tag"):
        World(n_ranks=1).run(program)


def test_message_latency_reflects_size():
    """Bigger payloads take longer end to end."""

    def program(ctx, nbytes):
        if ctx.rank == 0:
            yield from ctx.comm.send(np.zeros(nbytes, dtype=np.uint8), dest=1)
        else:
            t0 = ctx.sim.now
            yield from ctx.comm.recv(source=0)
            return ctx.sim.now - t0

    small = World(n_ranks=2).run(program, 8)[1]
    big = World(n_ranks=2).run(program, 100_000)[1]
    assert big > small * 5


def test_unordered_network_can_reorder_same_tag_messages():
    """On a Quadrics-like fabric, same-tag eager messages may overtake:
    the arrival order (not the send order) feeds the match queue."""

    def program(ctx, n):
        if ctx.rank == 0:
            for i in range(n):
                yield from ctx.comm.isend(i, dest=1, tag=0)
            # quiesce: wait for an ack message on another tag
            done = yield from ctx.comm.recv(source=1, tag=3)
            return done
        got = []
        for _ in range(n):
            got.append((yield from ctx.comm.recv(source=0, tag=0)))
        yield from ctx.comm.send("done", dest=0, tag=3)
        return got

    out = World(n_ranks=2, network=quadrics_like(), seed=5).run(program, 40)
    assert sorted(out[1]) == list(range(40))
    assert out[1] != list(range(40))
