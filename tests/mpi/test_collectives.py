"""Tests for collective algorithms across rank counts."""

import operator

import pytest

from repro.runtime import World


SIZES = [1, 2, 3, 4, 7, 8]


@pytest.mark.parametrize("n", SIZES)
def test_barrier_synchronizes(n):
    """No rank leaves the barrier before the last rank has entered."""

    def program(ctx):
        # stagger the entries
        yield ctx.sim.timeout(ctx.rank * 50.0)
        enter = ctx.sim.now
        yield from ctx.comm.barrier()
        leave = ctx.sim.now
        return (enter, leave)

    out = World(n_ranks=n).run(program)
    last_enter = max(e for e, _ in out)
    assert all(leave >= last_enter for _, leave in out)


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("root", [0, "last"])
def test_bcast(n, root):
    root = 0 if root == 0 else n - 1

    def program(ctx):
        obj = {"v": 99} if ctx.rank == root else None
        out = yield from ctx.comm.bcast(obj, root=root)
        return out["v"]

    assert World(n_ranks=n).run(program) == [99] * n


@pytest.mark.parametrize("n", SIZES)
def test_gather(n):
    def program(ctx):
        out = yield from ctx.comm.gather(ctx.rank * 2, root=0)
        return out

    out = World(n_ranks=n).run(program)
    assert out[0] == [2 * r for r in range(n)]
    assert all(v is None for v in out[1:])


@pytest.mark.parametrize("n", SIZES)
def test_scatter(n):
    def program(ctx):
        items = [f"item-{i}" for i in range(ctx.size)] if ctx.rank == 0 else None
        item = yield from ctx.comm.scatter(items, root=0)
        return item

    assert World(n_ranks=n).run(program) == [f"item-{r}" for r in range(n)]


def test_scatter_requires_size_items():
    def program(ctx):
        yield from ctx.comm.scatter([1], root=0)

    with pytest.raises(ValueError):
        World(n_ranks=2).run(program)


@pytest.mark.parametrize("n", SIZES)
def test_allgather(n):
    def program(ctx):
        out = yield from ctx.comm.allgather(ctx.rank ** 2)
        return out

    expected = [r**2 for r in range(n)]
    assert World(n_ranks=n).run(program) == [expected] * n


@pytest.mark.parametrize("n", SIZES)
def test_reduce_sum(n):
    def program(ctx):
        out = yield from ctx.comm.reduce(ctx.rank + 1, operator.add, root=0)
        return out

    out = World(n_ranks=n).run(program)
    assert out[0] == n * (n + 1) // 2
    assert all(v is None for v in out[1:])


@pytest.mark.parametrize("n", SIZES)
def test_reduce_nonzero_root(n):
    root = n - 1

    def program(ctx):
        out = yield from ctx.comm.reduce(ctx.rank, operator.add, root=root)
        return out

    out = World(n_ranks=n).run(program)
    assert out[root] == n * (n - 1) // 2


@pytest.mark.parametrize("n", SIZES)
def test_allreduce_max(n):
    def program(ctx):
        out = yield from ctx.comm.allreduce(ctx.rank * 3, max)
        return out

    assert World(n_ranks=n).run(program) == [(n - 1) * 3] * n


@pytest.mark.parametrize("n", [1, 2, 4, 5])
def test_alltoall(n):
    def program(ctx):
        items = [f"{ctx.rank}->{d}" for d in range(ctx.size)]
        out = yield from ctx.comm.alltoall(items)
        return out

    out = World(n_ranks=n).run(program)
    for r in range(n):
        assert out[r] == [f"{s}->{r}" for s in range(n)]


def test_back_to_back_collectives_do_not_interfere():
    def program(ctx):
        a = yield from ctx.comm.bcast(ctx.rank if ctx.rank == 0 else None, root=0)
        b = yield from ctx.comm.bcast(ctx.rank if ctx.rank == 1 else None, root=1)
        yield from ctx.comm.barrier()
        c = yield from ctx.comm.allreduce(1, operator.add)
        return (a, b, c)

    out = World(n_ranks=4).run(program)
    assert out == [(0, 1, 4)] * 4


def test_dup_isolates_traffic():
    def program(ctx):
        comm2 = yield from ctx.comm.dup()
        # Same-shaped bcasts on both communicators must not cross.
        if ctx.rank == 0:
            yield from ctx.comm.send("original", dest=1, tag=0)
            yield from comm2.send("duplicate", dest=1, tag=0)
            return None
        if ctx.rank == 1:
            d = yield from comm2.recv(source=0, tag=0)
            o = yield from ctx.comm.recv(source=0, tag=0)
            return (o, d)

    out = World(n_ranks=2).run(program)
    assert out[1] == ("original", "duplicate")


def test_split_by_parity():
    def program(ctx):
        sub = yield from ctx.comm.split(color=ctx.rank % 2, key=ctx.rank)
        total = yield from sub.allreduce(ctx.rank, operator.add)
        return (sub.rank, sub.size, total)

    out = World(n_ranks=6).run(program)
    # evens: 0,2,4 ; odds: 1,3,5
    assert out[0] == (0, 3, 6)
    assert out[1] == (0, 3, 9)
    assert out[4] == (2, 3, 6)
    assert out[5] == (2, 3, 9)


def test_split_color_none_returns_none():
    def program(ctx):
        sub = yield from ctx.comm.split(
            color=None if ctx.rank == 0 else 1, key=0
        )
        if sub is None:
            return "excluded"
        total = yield from sub.allreduce(1, operator.add)
        return total

    out = World(n_ranks=3).run(program)
    assert out == ["excluded", 2, 2]


def test_split_key_orders_ranks():
    def program(ctx):
        # reverse ordering via key
        sub = yield from ctx.comm.split(color=0, key=-ctx.rank)
        return sub.rank

    out = World(n_ranks=4).run(program)
    assert out == [3, 2, 1, 0]
