"""Tests for the eager/rendezvous two-sided protocols."""

import numpy as np
import pytest

from repro.mpi.request import Request
from repro.runtime import World


def roundtrip(nbytes, eager_threshold, n=2):
    def program(ctx):
        if ctx.rank == 0:
            data = (np.arange(nbytes) % 251).astype(np.uint8)
            yield from ctx.comm.send(data, dest=1)
            return None
        got = yield from ctx.comm.recv(source=0)
        return bool((got == (np.arange(nbytes) % 251).astype(np.uint8)).all())

    w = World(n_ranks=n, eager_threshold=eager_threshold)
    out = w.run(program)
    return w, out


class TestProtocolSelection:
    def test_small_message_stays_eager(self):
        w, out = roundtrip(1024, eager_threshold=16384)
        assert out[1] is True
        ep = w.endpoints[0]
        assert ep.eager_sends == 1
        assert ep.rdv_sends == 0

    def test_large_message_uses_rendezvous(self):
        w, out = roundtrip(100_000, eager_threshold=16384)
        assert out[1] is True
        ep = w.endpoints[0]
        assert ep.eager_sends == 0
        assert ep.rdv_sends == 1

    def test_threshold_boundary(self):
        w, _ = roundtrip(4096, eager_threshold=4096)
        assert w.endpoints[0].eager_sends == 1  # <= threshold: eager
        w, _ = roundtrip(4097, eager_threshold=4096)
        assert w.endpoints[0].rdv_sends == 1

    def test_rendezvous_handshake_packet_count(self):
        """RTS + CTS + DATA = 3 fabric packets for one rdv message."""
        w, _ = roundtrip(50_000, eager_threshold=1024)
        assert w.fabric.packets_delivered == 3


class TestRendezvousSemantics:
    def test_payload_waits_for_posted_recv(self):
        """The big payload must not move before the receive is posted."""

        def program(ctx):
            if ctx.rank == 0:
                data = np.zeros(60_000, dtype=np.uint8)
                req = yield from ctx.comm.isend(data, dest=1)
                # give the RTS plenty of time: payload must NOT be sent
                yield ctx.sim.timeout(500.0)
                sent_before = ctx.nic.packets_sent
                yield from ctx.comm.send("post-now", dest=1, tag=9)
                yield from req.wait()
                return sent_before
            yield from ctx.comm.recv(source=0, tag=9)
            got = yield from ctx.comm.recv(source=0)
            return got.size

        w = World(n_ranks=2, eager_threshold=1024)
        out = w.run(program)
        # before the receiver posted, rank 0 had sent only RTS (+ the
        # small tag-9 message counts after the probe point)
        assert out[0] == 1  # just the RTS
        assert out[1] == 60_000

    def test_send_request_completes_only_after_cts(self):
        def program(ctx):
            if ctx.rank == 0:
                data = np.zeros(40_000, dtype=np.uint8)
                req = yield from ctx.comm.isend(data, dest=1)
                yield ctx.sim.timeout(200.0)
                still_pending = not req.complete  # receiver posts at t=300
                yield from req.wait()
                return still_pending
            yield ctx.sim.timeout(300.0)
            yield from ctx.comm.recv(source=0)

        out = World(n_ranks=2, eager_threshold=1024).run(program)
        assert out[0] is True

    def test_interleaved_eager_and_rendezvous_same_pair(self):
        def program(ctx):
            if ctx.rank == 0:
                yield from ctx.comm.send(np.full(50_000, 1, np.uint8), dest=1,
                                         tag=1)
                yield from ctx.comm.send("small", dest=1, tag=2)
                yield from ctx.comm.send(np.full(30_000, 2, np.uint8), dest=1,
                                         tag=3)
            else:
                big1 = yield from ctx.comm.recv(source=0, tag=1)
                small = yield from ctx.comm.recv(source=0, tag=2)
                big2 = yield from ctx.comm.recv(source=0, tag=3)
                return (int(big1[0]), small, int(big2[0]))

        out = World(n_ranks=2, eager_threshold=8192).run(program)
        assert out[1] == (1, "small", 2)

    def test_many_concurrent_rendezvous(self):
        def program(ctx):
            if ctx.rank == 0:
                reqs = []
                for i in range(4):
                    r = yield from ctx.comm.isend(
                        np.full(30_000, i, np.uint8), dest=1, tag=i
                    )
                    reqs.append(r)
                yield from Request.waitall(reqs)
            else:
                vals = []
                for i in range(4):
                    got = yield from ctx.comm.recv(source=0, tag=i)
                    vals.append(int(got[0]))
                return vals

        out = World(n_ranks=2, eager_threshold=1024).run(program)
        assert out[1] == [0, 1, 2, 3]


class TestUnexpectedCopyCost:
    def test_late_receiver_pays_copy_for_eager_only(self):
        """An unexpected eager message costs an extra buffer copy; a
        rendezvous payload lands in the posted buffer directly."""
        size = 12_000

        def program(ctx, threshold_mode):
            if ctx.rank == 0:
                yield from ctx.comm.send(np.zeros(size, np.uint8), dest=1)
            else:
                yield ctx.sim.timeout(400.0)  # post late on purpose
                t0 = ctx.sim.now
                yield from ctx.comm.recv(source=0)
                return ctx.sim.now - t0

        t_eager = World(n_ranks=2, eager_threshold=10**6).run(
            program, "eager")[1]
        w = World(n_ranks=2, eager_threshold=64)
        t_rdv = w.run(program, "rdv")[1]
        # eager already arrived: pays unexpected copy but no wire wait;
        # rdv pays CTS + payload flight. Both work; the *unexpected
        # match counter* distinguishes the paths.
        assert w.endpoints[1].unexpected_matches == 0
        w2 = World(n_ranks=2, eager_threshold=10**6)
        w2.run(program, "eager")
        assert w2.endpoints[1].unexpected_matches == 1
        assert t_eager > 0 and t_rdv > 0
