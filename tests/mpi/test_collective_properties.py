"""Property-based tests for collective algorithms."""

import operator

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network import quadrics_like
from repro.runtime import World


@given(
    n=st.integers(1, 6),
    values=st.data(),
    root=st.data(),
)
@settings(max_examples=25, deadline=None)
def test_bcast_delivers_root_value(n, values, root):
    root_rank = root.draw(st.integers(0, n - 1))
    payload = values.draw(st.one_of(
        st.integers(), st.text(max_size=8),
        st.lists(st.integers(), max_size=4),
    ))

    def program(ctx):
        obj = payload if ctx.rank == root_rank else None
        out = yield from ctx.comm.bcast(obj, root=root_rank)
        return out

    assert World(n_ranks=n).run(program) == [payload] * n


@given(
    n=st.integers(1, 6),
    seed=st.integers(0, 10),
    data=st.data(),
)
@settings(max_examples=25, deadline=None)
def test_allreduce_matches_reference(n, seed, data):
    vals = [data.draw(st.integers(-100, 100)) for _ in range(n)]
    op_name = data.draw(st.sampled_from(["add", "min", "max"]))
    op = {"add": operator.add, "min": min, "max": max}[op_name]

    def program(ctx):
        out = yield from ctx.comm.allreduce(vals[ctx.rank], op)
        return out

    expected = vals[0]
    for v in vals[1:]:
        expected = op(expected, v)
    out = World(n_ranks=n, network=quadrics_like(), seed=seed).run(program)
    assert out == [expected] * n


@given(n=st.integers(1, 6), data=st.data())
@settings(max_examples=20, deadline=None)
def test_alltoall_is_transpose(n, data):
    matrix = [
        [data.draw(st.integers(0, 99)) for _ in range(n)] for _ in range(n)
    ]

    def program(ctx):
        out = yield from ctx.comm.alltoall(matrix[ctx.rank])
        return out

    out = World(n_ranks=n).run(program)
    for r in range(n):
        assert out[r] == [matrix[s][r] for s in range(n)]


@given(
    n=st.integers(2, 6),
    data=st.data(),
)
@settings(max_examples=20, deadline=None)
def test_split_partitions_consistently(n, data):
    colors = [data.draw(st.integers(0, 2)) for _ in range(n)]
    keys = [data.draw(st.integers(-5, 5)) for _ in range(n)]

    def program(ctx):
        sub = yield from ctx.comm.split(colors[ctx.rank], keys[ctx.rank])
        total = yield from sub.allreduce(1, operator.add)
        return (sub.rank, sub.size, total)

    out = World(n_ranks=n).run(program)
    for color in set(colors):
        members = [r for r in range(n) if colors[r] == color]
        expected_order = sorted(members, key=lambda r: (keys[r], r))
        for local, world in enumerate(expected_order):
            rank, size, total = out[world]
            assert rank == local
            assert size == len(members)
            assert total == len(members)


@given(n=st.integers(1, 5), data=st.data())
@settings(max_examples=15, deadline=None)
def test_gather_scatter_inverse(n, data):
    items = [data.draw(st.integers(0, 1000)) for _ in range(n)]

    def program(ctx):
        mine = yield from ctx.comm.scatter(
            items if ctx.rank == 0 else None, root=0
        )
        back = yield from ctx.comm.gather(mine, root=0)
        return back

    out = World(n_ranks=n).run(program)
    assert out[0] == items
