"""ULFM-style recovery collectives: ``Comm.shrink``, ``Comm.agree``,
and the failure-aware ``complete_collective`` fail-fast.

``shrink`` is deliberately *not* collective — every survivor derives
the identical communicator purely locally from the agreed dead set, so
no message transits a failed process.  ``agree`` is the fault-tolerant
agreement that produces that set.  ``complete_collective`` must not
enter its closing barrier when a member is dead (the barrier could
never finish); it fails fast with the structured errors instead.
"""

import pytest

from repro.datatypes import BYTE
from repro.faults import FaultPlan
from repro.mpi.constants import ERRORS_RETURN
from repro.network.config import generic_rdma
from repro.rma.target_mem import RmaError
from repro.runtime import World


class TestShrink:
    def test_survivors_build_identical_comms_locally(self):
        contexts = {}

        def program(ctx):
            scomm = ctx.comm.shrink({2})
            if ctx.rank == 2:
                assert scomm is None, "a dead rank gets no survivor comm"
                return None
            contexts[ctx.rank] = scomm.context
            assert scomm.size == 3
            assert tuple(scomm.group.world_ranks) == (0, 1, 3)
            # ranks renumber densely over the survivors
            assert scomm.rank == {0: 0, 1: 1, 3: 2}[ctx.rank]
            return scomm.rank
            yield  # pragma: no cover - keeps this a generator

        w = World(n_ranks=4, seed=0)
        w.run(program)
        assert len(set(contexts.values())) == 1, \
            "every survivor must derive the same context without talking"

    def test_shrink_ignores_foreign_ranks(self):
        def program(ctx):
            scomm = ctx.comm.shrink({99})
            assert scomm.size == ctx.size
            return True
            yield  # pragma: no cover

        w = World(n_ranks=3, seed=0)
        assert w.run(program) == [True] * 3

    def test_first_collective_on_shrunk_comm_works(self):
        """The survivors' first barrier/allgather synchronizes them even
        though the dead rank never participates."""
        def program(ctx):
            if ctx.rank == 1:
                yield ctx.sim.timeout(10_000.0)
                return None
            scomm = ctx.comm.shrink({1})
            vals = yield from scomm.allgather(ctx.rank * 10)
            assert vals == [0, 20]
            return True

        w = World(n_ranks=3, seed=0)
        assert w.run(program) == [True, None, True]


class TestAgree:
    def test_agree_unions_dead_sets_and_ands_flags(self):
        def program(ctx):
            if ctx.rank == 3:
                yield ctx.sim.timeout(10_000.0)
                return None
            # each survivor suspects 3; rank 2 additionally suspects... no
            # one else, but flags differ
            flag = ctx.rank != 2
            verdict, agreed = yield from ctx.comm.agree({3}, flag=flag)
            assert agreed == frozenset({3})
            assert verdict is False  # rank 2 voted False
            return True

        w = World(n_ranks=4, seed=0)
        assert w.run(program) == [True, True, True, None]

    def test_agree_with_a_genuinely_killed_rank(self):
        """The agreement runs on the shrunk group, so a really-dead
        member cannot block it."""
        def program(ctx):
            if ctx.rank == 1:
                yield ctx.sim.timeout(50_000.0)
                return None
            yield ctx.sim.timeout(500.0)  # past the kill
            verdict, agreed = yield from ctx.comm.agree({1})
            assert verdict is True
            assert agreed == frozenset({1})
            return True

        plan = FaultPlan().kill(rank=1, at=100.0)
        w = World(n_ranks=3, seed=0, fault_plan=plan,
                  rma_errhandler=ERRORS_RETURN)
        assert w.run(program) == [True, None, True]

    def test_agree_raises_for_a_caller_in_the_dead_set(self):
        def program(ctx):
            with pytest.raises(ValueError):
                yield from ctx.comm.agree({ctx.rank})
            return True

        w = World(n_ranks=2, seed=0)
        assert w.run(program) == [True, True]


class TestCompleteCollectiveFailFast:
    def test_dead_member_skips_the_doomed_barrier(self):
        """Survivors with a rank_failed completion error must return the
        structured errors instead of hanging in the closing barrier
        (which the dead rank can never enter)."""
        def program(ctx):
            alloc, tmems = yield from ctx.rma.expose_collective(256)
            src = ctx.mem.space.alloc(256)
            if ctx.rank == 2:
                yield ctx.sim.timeout(50_000.0)
                return None
            yield ctx.sim.timeout(300.0)  # the kill has happened
            # both survivors target the dead rank, then complete
            yield from ctx.rma.put(src, 0, 256, BYTE, tmems[2], 0,
                                   256, BYTE)
            errs = yield from ctx.rma.complete_collective()
            assert errs, "completion against a dead rank must report"
            assert all(isinstance(e, RmaError) for e in errs)
            assert any(e.kind == "rank_failed" for e in errs)
            return "survived"

        plan = FaultPlan().kill(rank=2, at=100.0).with_transport(
            retry_budget=3)
        w = World(n_ranks=3, network=generic_rdma(), fault_plan=plan,
                  seed=7, rma_errhandler=ERRORS_RETURN)
        # the decisive assertion: this returns rather than deadlocking
        assert w.run(program) == ["survived", "survived", None]

    def test_clean_completion_still_runs_the_barrier(self):
        """No failure -> the collective keeps its global-visibility
        barrier (survivor pairs stay synchronized)."""
        times = {}

        def program(ctx):
            alloc, tmems = yield from ctx.rma.expose_collective(256)
            src = ctx.mem.space.alloc(256)
            if ctx.rank == 0:
                yield from ctx.rma.put(src, 0, 256, BYTE, tmems[1], 0,
                                       256, BYTE)
            else:
                yield ctx.sim.timeout(400.0)  # skew the arrival
            errs = yield from ctx.rma.complete_collective()
            assert errs == []
            times[ctx.rank] = ctx.sim.now
            return True

        w = World(n_ranks=2, seed=0)
        assert w.run(program) == [True, True]
        assert times[0] >= 400.0, "the barrier must have held rank 0"
