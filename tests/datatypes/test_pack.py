"""Tests for the pack/unpack engine, including property-based roundtrips."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datatypes import (
    BYTE,
    FLOAT64,
    INT16,
    INT32,
    DatatypeError,
    contiguous,
    hindexed,
    indexed,
    pack,
    struct_type,
    unpack,
    unpack_swapped,
    vector,
)
from repro.datatypes.pack import check_bounds, swap_inplace


def buf_of(n, fill=0):
    return np.full(n, fill, dtype=np.uint8)


class TestPackContiguous:
    def test_roundtrip(self):
        buf = np.arange(64, dtype=np.uint8)
        wire = pack(buf, 8, contiguous(16, BYTE), 1)
        assert wire.tolist() == list(range(8, 24))
        out = buf_of(64)
        unpack(wire, out, 0, contiguous(16, BYTE), 1)
        assert out[:16].tolist() == list(range(8, 24))

    def test_count_multiplies(self):
        buf = np.arange(100, dtype=np.uint8)
        wire = pack(buf, 0, contiguous(10, BYTE), 3)
        assert wire.size == 30

    def test_zero_count(self):
        wire = pack(buf_of(10), 0, BYTE, 0)
        assert wire.size == 0


class TestPackStrided:
    def test_vector_gathers_blocks(self):
        buf = np.arange(48, dtype=np.uint8)
        t = vector(3, 1, 2, INT32)  # int32 at bytes 0-3, 8-11, 16-19
        wire = pack(buf, 0, t, 1)
        assert wire.tolist() == [0, 1, 2, 3, 8, 9, 10, 11, 16, 17, 18, 19]

    def test_vector_scatter_on_unpack(self):
        t = vector(2, 1, 3, INT32)
        wire = np.arange(8, dtype=np.uint8)
        out = buf_of(32, fill=255)
        unpack(wire, out, 0, t, 1)
        assert out[0:4].tolist() == [0, 1, 2, 3]
        assert out[12:16].tolist() == [4, 5, 6, 7]
        assert out[4:12].tolist() == [255] * 8  # gap untouched

    def test_indexed_roundtrip(self):
        t = indexed([2, 3], [1, 6], INT16)
        src = np.arange(64, dtype=np.uint8)
        wire = pack(src, 10, t, 1)
        dst = buf_of(64)
        unpack(wire, dst, 10, t, 1)
        for seg in t.segments:
            s = 10 + seg.disp
            assert (dst[s : s + seg.nbytes] == src[s : s + seg.nbytes]).all()


class TestBounds:
    def test_overrun_rejected(self):
        with pytest.raises(DatatypeError, match="outside buffer"):
            pack(buf_of(10), 8, INT32, 1)

    def test_negative_offset_area_rejected(self):
        with pytest.raises(DatatypeError):
            pack(buf_of(10), -1, INT32, 1)

    def test_exact_fit_ok(self):
        pack(buf_of(8), 4, INT32, 1)

    def test_wrong_buffer_dtype_rejected(self):
        with pytest.raises(DatatypeError, match="uint8"):
            check_bounds(np.zeros(4, dtype=np.int32), 0, INT32, 1)

    def test_unpack_wrong_wire_size_rejected(self):
        with pytest.raises(DatatypeError, match="wire data"):
            unpack(np.zeros(3, dtype=np.uint8), buf_of(16), 0, INT32, 1)


class TestSwap:
    def test_swap_int32_elements(self):
        data = np.array([1, 2, 3, 4, 5, 6, 7, 8], dtype=np.uint8)
        swap_inplace(data, contiguous(2, INT32), 1)
        assert data.tolist() == [4, 3, 2, 1, 8, 7, 6, 5]

    def test_swap_bytes_is_identity(self):
        data = np.arange(8, dtype=np.uint8)
        swap_inplace(data, contiguous(8, BYTE), 1)
        assert data.tolist() == list(range(8))

    def test_double_swap_is_identity(self):
        rng = np.random.default_rng(0)
        data = rng.integers(0, 256, 64, dtype=np.uint8)
        ref = data.copy()
        t = contiguous(8, FLOAT64)
        swap_inplace(data, t, 1)
        swap_inplace(data, t, 1)
        assert (data == ref).all()

    def test_unpack_swapped_converts_endianness(self):
        value = np.array([0x11223344], dtype=">i4")  # big-endian wire
        wire = value.view(np.uint8).copy()
        out = buf_of(4)
        unpack_swapped(wire, out, 0, INT32, 1)
        got = out.view("<i4")[0]
        assert got == 0x11223344

    def test_struct_mixed_granularity_swap(self):
        t = struct_type([1, 1], [0, 4], [INT32, FLOAT64])
        src = np.zeros(16, dtype=np.uint8)
        src[:4] = np.array([0x12345678], dtype="<i4").view(np.uint8)
        src[4:12] = np.array([1.5], dtype="<f8").view(np.uint8)
        wire = pack(src, 0, t, 1)
        swap_inplace(wire, t, 1)
        assert wire[:4].view(">i4")[0] == 0x12345678
        assert wire[4:12].view(">f8")[0] == 1.5


# ----------------------------------------------------------------------
# Property-based roundtrips
# ----------------------------------------------------------------------

datatype_strategy = st.one_of(
    st.builds(lambda n: contiguous(n, BYTE), st.integers(0, 32)),
    st.builds(lambda n: contiguous(n, INT32), st.integers(0, 8)),
    st.builds(
        lambda c, b, s: vector(c, b, b + s, INT16),
        st.integers(0, 5),
        st.integers(1, 4),
        st.integers(0, 4),
    ),
    st.builds(
        lambda lens_disps: indexed(
            [x[0] for x in lens_disps],
            # strictly increasing, non-overlapping displacements
            [
                sum(y[0] + y[1] for y in lens_disps[:i])
                for i in range(len(lens_disps))
            ],
            INT32,
        ),
        st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 3)),
            min_size=0,
            max_size=4,
        ),
    ),
)


@given(dtype=datatype_strategy, count=st.integers(0, 3), seed=st.integers(0, 2**31))
@settings(max_examples=150, deadline=None)
def test_pack_unpack_roundtrip(dtype, count, seed):
    """unpack(pack(x)) restores exactly the bytes the layout touches."""
    lo, hi = dtype.byte_range(count)
    offset = max(0, -lo)
    size = offset + max(hi, 1) + 8
    rng = np.random.default_rng(seed)
    src = rng.integers(0, 256, size, dtype=np.uint8)
    wire = pack(src, offset, dtype, count)
    assert wire.size == count * dtype.size

    dst = np.zeros(size, dtype=np.uint8)
    unpack(wire, dst, offset, dtype, count)
    for seg in dtype.segments_for(count):
        s = offset + seg.disp
        assert (dst[s : s + seg.nbytes] == src[s : s + seg.nbytes]).all()


@given(dtype=datatype_strategy, count=st.integers(0, 3), seed=st.integers(0, 2**31))
@settings(max_examples=100, deadline=None)
def test_unpack_touches_only_layout_bytes(dtype, count, seed):
    """Bytes outside the layout are never written by unpack."""
    lo, hi = dtype.byte_range(count)
    offset = max(0, -lo)
    size = offset + max(hi, 1) + 8
    rng = np.random.default_rng(seed)
    wire = rng.integers(0, 256, count * dtype.size, dtype=np.uint8)
    dst = np.full(size, 0xAB, dtype=np.uint8)
    unpack(wire, dst, offset, dtype, count)
    touched = np.zeros(size, dtype=bool)
    for seg in dtype.segments_for(count):
        s = offset + seg.disp
        touched[s : s + seg.nbytes] = True
    assert (dst[~touched] == 0xAB).all()


@given(dtype=datatype_strategy, count=st.integers(0, 3), seed=st.integers(0, 2**31))
@settings(max_examples=100, deadline=None)
def test_double_swap_identity_property(dtype, count, seed):
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 256, count * dtype.size, dtype=np.uint8)
    ref = data.copy()
    swap_inplace(data, dtype, count)
    swap_inplace(data, dtype, count)
    assert (data == ref).all()


@given(dtype=datatype_strategy, count=st.integers(1, 3))
@settings(max_examples=100, deadline=None)
def test_size_extent_invariants(dtype, count):
    """size <= bytes spanned; segments account for exactly `size` bytes."""
    seg_bytes = sum(s.nbytes for s in dtype.segments)
    assert seg_bytes == dtype.size
    lo, hi = dtype.byte_range(count)
    assert hi - lo >= 0
    if dtype.size:
        assert count * dtype.size <= (hi - lo)
