"""Seeded property tests: pack -> unpack round-trips bit-identically
for randomly composed derived layouts (ISSUE 5 satellite).

Each case builds a random (possibly nested) derived datatype, fills a
source buffer with a random byte pattern, packs ``count`` instances,
scatters them into a fresh buffer, and checks that exactly the bytes
the layout touches arrive — and nothing else does.
"""

import random

import numpy as np
import pytest

from repro.datatypes import (
    DOUBLE,
    FLOAT32,
    INT16,
    INT32,
    INT64,
    UINT8,
    contiguous,
    hindexed,
    hvector,
    indexed,
    pack,
    struct_type,
    unpack,
    vector,
)

_PRIMITIVES = (UINT8, INT16, INT32, INT64, FLOAT32, DOUBLE)


def _random_type(rng, depth=0):
    base = rng.choice(_PRIMITIVES)
    if depth >= 2 or rng.random() < 0.3:
        return base
    kind = rng.choice(("contiguous", "vector", "hvector", "indexed",
                       "hindexed", "struct"))
    inner = _random_type(rng, depth + 1)
    if kind == "contiguous":
        return contiguous(rng.randint(1, 4), inner)
    if kind == "vector":
        count = rng.randint(1, 4)
        blocklength = rng.randint(1, 3)
        stride = blocklength + rng.randint(0, 3)
        return vector(count, blocklength, stride, inner)
    if kind == "hvector":
        count = rng.randint(1, 4)
        blocklength = rng.randint(1, 3)
        # Byte stride must clear one block; keep it aligned to the
        # element extent so blocks never overlap.
        stride = (blocklength + rng.randint(0, 3)) * inner.extent
        return hvector(count, blocklength, stride, inner)
    if kind == "indexed":
        n = rng.randint(1, 3)
        blocklengths = [rng.randint(1, 3) for _ in range(n)]
        displacements = []
        pos = 0
        for b in blocklengths:
            pos += rng.randint(0, 2)
            displacements.append(pos)
            pos += b
        return indexed(blocklengths, displacements, inner)
    if kind == "hindexed":
        n = rng.randint(1, 3)
        blocklengths = [rng.randint(1, 3) for _ in range(n)]
        displacements = []
        pos = 0
        for b in blocklengths:
            pos += rng.randint(0, 2) * inner.extent
            displacements.append(pos)
            pos += b * inner.extent
        return hindexed(blocklengths, displacements, inner)
    # struct: disjoint fields of differing primitive types.
    n = rng.randint(1, 3)
    types = [rng.choice(_PRIMITIVES) for _ in range(n)]
    blocklengths = [rng.randint(1, 3) for _ in range(n)]
    displacements = []
    pos = 0
    for t, b in zip(types, blocklengths):
        pos += rng.randint(0, 8)
        displacements.append(pos)
        pos += b * t.extent
    return struct_type(blocklengths, displacements, types)


@pytest.mark.parametrize("seed", range(50))
def test_pack_unpack_round_trip(seed):
    rng = random.Random(1000 + seed)
    dtype = _random_type(rng)
    count = rng.randint(1, 4)
    offset = rng.randint(0, 32)
    nbytes = offset + count * dtype.extent + rng.randint(0, 16)

    src = np.frombuffer(
        bytes(rng.getrandbits(8) for _ in range(nbytes)), dtype=np.uint8
    ).copy()
    wire = pack(src, offset, dtype, count)
    assert wire.size == count * dtype.size

    sentinel = 0xAB
    dst = np.full(nbytes, sentinel, dtype=np.uint8)
    unpack(wire, dst, offset, dtype, count)

    # Bytes the layout touches arrive bit-identically...
    touched = np.zeros(nbytes, dtype=bool)
    for i in range(count):
        base = offset + i * dtype.extent
        for seg in dtype.segments:
            touched[base + seg.disp : base + seg.disp + seg.nbytes] = True
    assert np.array_equal(dst[touched], src[touched]), (
        f"seed {seed}: {dtype!r} corrupted payload bytes")
    # ...and gap/padding bytes stay untouched.
    assert (dst[~touched] == sentinel).all(), (
        f"seed {seed}: {dtype!r} wrote outside its layout")

    # Packing the scattered copy again reproduces the same wire bytes.
    assert np.array_equal(pack(dst, offset, dtype, count), wire)


@pytest.mark.parametrize("seed", range(10))
def test_zero_copy_contiguous_view(seed):
    rng = random.Random(7000 + seed)
    base = rng.choice(_PRIMITIVES)
    dtype = contiguous(rng.randint(1, 8), base)
    count = rng.randint(1, 4)
    offset = rng.randint(0, 16)
    nbytes = offset + count * dtype.extent
    src = np.frombuffer(
        bytes(rng.getrandbits(8) for _ in range(nbytes)), dtype=np.uint8
    ).copy()
    view = pack(src, offset, dtype, count, copy=False)
    assert not view.flags.writeable
    assert np.shares_memory(view, src)
    assert np.array_equal(view, pack(src, offset, dtype, count))
