"""Tests for datatype construction and flattened layouts."""

import pytest

from repro.datatypes import (
    BYTE,
    DOUBLE,
    FLOAT64,
    INT32,
    INT64,
    DatatypeError,
    Segment,
    contiguous,
    hindexed,
    hvector,
    indexed,
    struct_type,
    vector,
)


class TestPrimitives:
    def test_sizes(self):
        assert BYTE.size == 1
        assert INT32.size == 4
        assert INT64.size == 8
        assert FLOAT64.size == 8

    def test_extent_equals_size(self):
        for t in (BYTE, INT32, FLOAT64):
            assert t.extent == t.size

    def test_single_segment(self):
        assert INT32.segments == (Segment(0, 4, 4),)

    def test_is_contiguous(self):
        assert INT32.is_contiguous

    def test_aliases(self):
        assert DOUBLE is FLOAT64


class TestContiguous:
    def test_coalesces_to_one_segment(self):
        t = contiguous(1024, BYTE)
        assert t.segments == (Segment(0, 1024, 1),)
        assert t.size == 1024
        assert t.extent == 1024
        assert t.is_contiguous

    def test_of_int32(self):
        t = contiguous(10, INT32)
        assert t.size == 40
        assert t.segments == (Segment(0, 40, 4),)

    def test_zero_count(self):
        t = contiguous(0, INT32)
        assert t.size == 0
        assert t.segments == ()

    def test_negative_count_rejected(self):
        with pytest.raises(DatatypeError):
            contiguous(-1, BYTE)

    def test_nested(self):
        inner = contiguous(4, INT32)
        outer = contiguous(3, inner)
        assert outer.size == 48
        assert outer.segments == (Segment(0, 48, 4),)


class TestVector:
    def test_layout(self):
        # 3 blocks of 2 int32 every 4 int32: |xx..|xx..|xx|
        t = vector(3, 2, 4, INT32)
        assert t.size == 24
        assert t.extent == ((3 - 1) * 4 + 2) * 4
        assert t.segments == (
            Segment(0, 8, 4),
            Segment(16, 8, 4),
            Segment(32, 8, 4),
        )
        assert not t.is_contiguous

    def test_unit_stride_collapses_to_contiguous(self):
        t = vector(4, 1, 1, INT64)
        assert t.segments == (Segment(0, 32, 8),)
        assert t.is_contiguous

    def test_negative_args_rejected(self):
        with pytest.raises(DatatypeError):
            vector(-1, 1, 1, BYTE)
        with pytest.raises(DatatypeError):
            vector(1, -1, 1, BYTE)

    def test_zero_blocks(self):
        t = vector(0, 2, 4, INT32)
        assert t.size == 0
        assert t.extent == 0


class TestHvector:
    def test_byte_stride(self):
        t = hvector(2, 3, 100, BYTE)
        assert t.segments == (Segment(0, 3, 1), Segment(100, 3, 1))
        assert t.size == 6
        assert t.extent == 103


class TestIndexed:
    def test_layout(self):
        t = indexed([2, 1], [0, 5], INT32)
        assert t.size == 12
        assert t.segments == (Segment(0, 8, 4), Segment(20, 4, 4))
        assert t.extent == 24

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(DatatypeError):
            indexed([1, 2], [0], BYTE)

    def test_adjacent_blocks_coalesce(self):
        t = indexed([2, 2], [0, 2], INT32)
        assert t.segments == (Segment(0, 16, 4),)


class TestHindexed:
    def test_byte_displacements(self):
        t = hindexed([1, 1], [0, 9], INT32)
        assert t.segments == (Segment(0, 4, 4), Segment(9, 4, 4))
        assert t.extent == 13

    def test_negative_blocklength_rejected(self):
        with pytest.raises(DatatypeError):
            hindexed([-1], [0], BYTE)


class TestStruct:
    def test_mixed_fields(self):
        # {int32 a; float64 b;} with natural alignment padding
        t = struct_type([1, 1], [0, 8], [INT32, FLOAT64])
        assert t.size == 12
        assert t.extent == 16
        assert t.segments == (Segment(0, 4, 4), Segment(8, 8, 8))

    def test_forced_extent(self):
        t = struct_type([1], [0], [INT32], extent=64)
        assert t.extent == 64
        assert t.size == 4

    def test_mismatched_lists_rejected(self):
        with pytest.raises(DatatypeError):
            struct_type([1], [0, 1], [INT32])

    def test_array_field(self):
        t = struct_type([3], [4], [INT32])
        assert t.size == 12
        assert t.segments == (Segment(4, 12, 4),)


class TestByteRange:
    def test_contiguous(self):
        assert contiguous(8, INT32).byte_range(2) == (0, 64)

    def test_vector_counts_extent_between_instances(self):
        t = vector(2, 1, 4, INT32)  # extent 20, last byte of one inst at 20
        lo, hi = t.byte_range(3)
        assert lo == 0
        assert hi == 2 * t.extent + 20

    def test_zero_count(self):
        assert INT32.byte_range(0) == (0, 0)


class TestEquality:
    def test_structural_equality(self):
        assert vector(2, 2, 4, INT32) == vector(2, 2, 4, INT32)
        assert contiguous(4, BYTE) != contiguous(5, BYTE)

    def test_hashable(self):
        assert len({contiguous(4, BYTE), contiguous(4, BYTE)}) == 1

    def test_equivalent_layouts_equal(self):
        # contiguous(4, int32) and vector(4,1,1,int32) flatten identically
        assert contiguous(4, INT32) == vector(4, 1, 1, INT32)


class TestSegmentsFor:
    def test_multiple_instances_coalesce(self):
        t = contiguous(4, BYTE)
        assert t.segments_for(3) == (Segment(0, 12, 1),)

    def test_strided_instances_coalesce_only_at_seams(self):
        # extent 12: the second instance starts right after the first's
        # trailing block (byte 8..12 meets 12..16), so those two merge.
        t = vector(2, 1, 2, INT32)
        segs = t.segments_for(2)
        assert [(s.disp, s.nbytes) for s in segs] == [(0, 4), (8, 8), (20, 4)]

    def test_negative_count_rejected(self):
        with pytest.raises(DatatypeError):
            BYTE.segments_for(-1)
