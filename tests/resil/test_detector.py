"""The RMA-heartbeat failure detector.

Verdicts are local and sticky; evidence comes from two sources
(heartbeat silence and transport flow death); the whole subsystem is
opt-in so the fault-free fast path stays bit-identical.
"""

import pytest

from repro.datatypes import BYTE
from repro.faults import FaultPlan
from repro.mpi.constants import ERRORS_RETURN
from repro.network.config import generic_rdma
from repro.resil.detector import ResilienceConfig, ResilienceRuntime
from repro.runtime import World


def sleeper(until):
    def program(ctx):
        yield ctx.sim.timeout(until)
        return ctx.rank
    return program


class TestOptIn:
    def test_default_world_builds_no_detector(self):
        w = World(n_ranks=2, seed=0)
        assert w.resil is None

    def test_resilience_true_builds_default_runtime(self):
        w = World(n_ranks=2, seed=0, resilience=True)
        assert isinstance(w.resil, ResilienceRuntime)
        assert w.resil.config == ResilienceConfig()

    def test_explicit_config_is_honored(self):
        cfg = ResilienceConfig(heartbeat_interval=50.0,
                               suspicion_timeout=400.0)
        w = World(n_ranks=2, seed=0, resilience=cfg)
        assert w.resil.config.heartbeat_interval == 50.0

    def test_fault_free_run_reaches_no_verdict(self):
        w = World(n_ranks=3, seed=0, resilience=True)
        w.run(sleeper(3000.0))
        assert w.resil.stats["heartbeats"] > 0
        assert w.resil.stats["suspects"] == 0
        assert w.resil.stats["false_suspects"] == 0
        for r in range(3):
            assert w.resil.suspected(r) == frozenset()


class TestConfigValidation:
    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError, match="heartbeat_interval"):
            ResilienceConfig(heartbeat_interval=0.0)

    def test_timeout_must_exceed_interval(self):
        with pytest.raises(ValueError, match="suspicion_timeout"):
            ResilienceConfig(heartbeat_interval=200.0,
                             suspicion_timeout=100.0)

    def test_jitter_range(self):
        with pytest.raises(ValueError, match="jitter"):
            ResilienceConfig(jitter=1.0)


class TestHeartbeatDetection:
    def _killed_world(self, seed=0):
        plan = FaultPlan().kill(rank=1, at=500.0)
        w = World(n_ranks=4, seed=seed, fault_plan=plan,
                  resilience=True)
        w.run(sleeper(5000.0))
        return w

    def test_every_survivor_suspects_the_victim(self):
        w = self._killed_world()
        for observer in (0, 2, 3):
            assert 1 in w.resil.suspected(observer)

    def test_verdicts_come_after_the_kill_within_the_timeout(self):
        w = self._killed_world()
        cfg = w.resil.config
        for notice in w.resil.notices:
            assert notice.rank == 1
            assert notice.detected_at > 500.0
            # silence-based detection: kill + timeout + a couple of
            # monitor polling periods of slack
            assert notice.detected_at < (
                500.0 + cfg.suspicion_timeout
                + 4 * cfg.heartbeat_interval
            )

    def test_detect_latency_histogram_is_fed(self):
        w = self._killed_world()
        hist = w.metrics.histogram("resil.detect_latency")
        assert hist.count == len(w.resil.notices) >= 3
        assert hist.max <= 5000.0 - 500.0

    def test_no_false_suspects_on_live_ranks(self):
        w = self._killed_world()
        assert w.resil.stats["false_suspects"] == 0
        for observer in (0, 2, 3):
            assert w.resil.suspected(observer) == frozenset({1})

    def test_detection_is_seed_deterministic(self):
        a = self._killed_world(seed=7)
        b = self._killed_world(seed=7)
        assert [(n.observer, n.rank, n.detected_at, n.via)
                for n in a.resil.notices] == \
               [(n.observer, n.rank, n.detected_at, n.via)
                for n in b.resil.notices]


class TestTransportEvidence:
    def test_active_traffic_detects_faster_than_silence(self):
        """A flow declared dead (retry budget against a dead rank) is an
        immediate verdict — no need to wait out the heartbeat timeout."""
        def program(ctx):
            alloc, tmems = yield from ctx.rma.expose_collective(256)
            if ctx.rank == 1:
                yield ctx.sim.timeout(10_000.0)
                return None
            src = ctx.mem.space.alloc(256)
            while ctx.sim.now < 2500.0:
                req = yield from ctx.rma.put(
                    src, 0, 256, BYTE, tmems[1], 0, 256, BYTE,
                    remote_completion=True)
                yield from req.wait()
                yield ctx.sim.timeout(50.0)
            return "done"

        plan = FaultPlan().kill(rank=1, at=300.0).with_transport(
            retry_budget=3)
        w = World(n_ranks=2, network=generic_rdma(), fault_plan=plan,
                  seed=7, rma_errhandler=ERRORS_RETURN, resilience=True)
        w.run(program)
        transport_verdicts = [n for n in w.resil.notices
                              if n.via == "transport"]
        assert transport_verdicts, "flow death produced no verdict"
        first = min(n.detected_at for n in transport_verdicts)
        assert first < 300.0 + w.resil.config.suspicion_timeout, \
            "transport evidence should beat the heartbeat timeout"


class TestStickiness:
    def test_a_restarted_rank_is_not_readmitted(self):
        plan = FaultPlan().kill(rank=2, at=400.0, restart_at=1200.0)
        w = World(n_ranks=3, seed=0, fault_plan=plan, resilience=True)
        w.run(sleeper(6000.0))
        for observer in (0, 1):
            assert 2 in w.resil.suspected(observer), \
                "ULFM suspicion must be sticky across restart"

    def test_restarted_rank_is_shunned_but_not_confused(self):
        plan = FaultPlan().kill(rank=2, at=400.0, restart_at=1200.0)
        w = World(n_ranks=3, seed=0, fault_plan=plan, resilience=True)
        w.run(sleeper(6000.0))
        cfg = w.resil.config
        # Its observation clocks were frozen while dead, so coming back
        # it must not *instantly* declare everyone silent; but the
        # survivors have shunned it (sticky suspicion stops their
        # heartbeats toward it), so it eventually reaches the mutual
        # verdict — after a full timeout of genuine silence.
        own = [n for n in w.resil.notices if n.observer == 2]
        for notice in own:
            assert notice.detected_at >= 1200.0 + cfg.suspicion_timeout
        # and the exclusion is mutual by the end of the run
        assert w.resil.suspected(2) == frozenset({0, 1})


class TestSubscription:
    def test_subscribe_replays_past_verdicts(self):
        plan = FaultPlan().kill(rank=1, at=500.0)
        w = World(n_ranks=3, seed=0, fault_plan=plan, resilience=True)
        w.run(sleeper(4000.0))
        seen = []
        w.resil.subscribe(0, seen.append)
        assert [n.rank for n in seen] == [1]
        assert seen[0].observer == 0

    def test_assert_failed_notifies_subscribers(self):
        w = World(n_ranks=3, seed=0, resilience=True)
        seen = []

        def program(ctx):
            if ctx.rank == 0:
                ctx.world.resil.subscribe(0, seen.append)
                ctx.world.resil.assert_failed(0, 2)
            yield ctx.sim.timeout(10.0)
            return None

        w.run(program)
        assert [(n.rank, n.via) for n in seen] == [(2, "manual")]
        assert 2 in w.resil.suspected(0)
        # manual verdicts are local: other observers are unaffected
        assert w.resil.suspected(1) == frozenset()
