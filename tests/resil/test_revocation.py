"""ULFM window revocation on MPI-2 windows.

``Win.revoke`` poisons a window everywhere: the local handle fails
fast, a fire-and-forget notice fans out to the other members, and the
failure detector revokes automatically when a member of the window's
communicator dies — so no rank ever blocks inside a collective that a
dead member can never enter.
"""

import pytest

from repro.datatypes import BYTE
from repro.faults import FaultPlan
from repro.resil.errors import WindowRevoked
from repro.runtime import World


class TestManualRevoke:
    def test_local_operations_fail_fast_after_revoke(self):
        def program(ctx):
            alloc = ctx.mem.space.alloc(64)
            win = yield from ctx.mpi2.win_create(alloc)
            yield from win.fence()
            win.revoke()
            assert win.revoked
            src = ctx.mem.space.alloc(8)
            try:
                yield from win.put(src, 0, 8, BYTE, 1 - ctx.rank, 0)
            except WindowRevoked as err:
                assert err.kind == "window_revoked"
                assert err.win_id == win.win_id
                return "refused"
            return "accepted"

        assert World(n_ranks=2, seed=0).run(program) == ["refused"] * 2

    def test_revoke_is_idempotent(self):
        def program(ctx):
            alloc = ctx.mem.space.alloc(64)
            win = yield from ctx.mpi2.win_create(alloc)
            win.revoke()
            win.revoke()  # second call is a no-op, not an error
            return win.revoked

        assert World(n_ranks=2, seed=0).run(program) == [True, True]

    def test_revoke_fans_out_to_every_member(self):
        """One rank revokes; the others observe it without calling any
        window function — the notice rides the fabric."""
        def program(ctx):
            alloc = ctx.mem.space.alloc(64)
            win = yield from ctx.mpi2.win_create(alloc)
            if ctx.rank == 0:
                yield ctx.sim.timeout(100.0)
                win.revoke()
            yield ctx.sim.timeout(1000.0)
            return win.revoked

        assert World(n_ranks=3, seed=0).run(program) == [True] * 3

    def test_sync_on_a_revoked_window_raises_instead_of_blocking(self):
        """The decisive liveness property: fence after revocation must
        raise, never enter the doomed barrier."""
        def program(ctx):
            alloc = ctx.mem.space.alloc(64)
            win = yield from ctx.mpi2.win_create(alloc)
            if ctx.rank == 0:
                win.revoke()
            yield ctx.sim.timeout(500.0)  # notice has arrived
            try:
                yield from win.fence()
            except WindowRevoked:
                return "raised"
            return "entered"

        assert World(n_ranks=3, seed=0).run(program) == ["raised"] * 3

    def test_free_on_a_revoked_window_is_local(self):
        def program(ctx):
            alloc = ctx.mem.space.alloc(64)
            win = yield from ctx.mpi2.win_create(alloc)
            win.revoke()
            before = ctx.sim.now
            yield from win.free()  # must not wait for a barrier
            assert ctx.sim.now == before
            return "freed"

        assert World(n_ranks=2, seed=0).run(program) == ["freed"] * 2


class TestAutoRevoke:
    def test_member_death_revokes_the_window(self):
        """With the detector armed, a member's death poisons every
        surviving handle; the next fence raises with the failed rank
        attached instead of hanging."""
        def program(ctx):
            alloc = ctx.mem.space.alloc(64)
            win = yield from ctx.mpi2.win_create(alloc)
            if ctx.rank == 2:
                yield ctx.sim.timeout(50_000.0)
                return None
            while not win.revoked and ctx.sim.now < 8000.0:
                yield ctx.sim.timeout(100.0)
            assert win.revoked, "detector verdict never revoked the window"
            try:
                yield from win.fence()
            except WindowRevoked as err:
                assert err.kind == "window_revoked"
                # the rank whose own detector fired carries the culprit;
                # a rank beaten to it by the fan-out notice sees None
                assert err.failed_rank in (2, None)
                return "raised"
            return "entered"

        plan = FaultPlan().kill(rank=2, at=300.0)
        w = World(n_ranks=3, seed=0, fault_plan=plan, resilience=True)
        assert w.run(program) == ["raised", "raised", None]

    def test_windows_unaffected_without_resilience_member_alive(self):
        """No detector, no failure: windows behave exactly as before
        (the revocation machinery is pure opt-in)."""
        def program(ctx):
            alloc = ctx.mem.space.alloc(64)
            win = yield from ctx.mpi2.win_create(alloc)
            yield from win.fence()
            yield from win.fence()
            assert not win.revoked
            yield from win.free()
            return "clean"

        assert World(n_ranks=3, seed=0).run(program) == ["clean"] * 3
