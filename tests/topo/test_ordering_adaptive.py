"""The ``ordering`` attribute vs an adaptively-routed (unordered) torus.

Paper §II: on fabrics that do not guarantee point-to-point ordering,
the implementation must enforce it when the window carries the
``ordering`` attribute — and may exploit the reordering headroom when
it does not.  Adaptive torus routing gives two minimal routes between
off-axis hosts; congesting one of them with cross-traffic makes
same-flow packets genuinely overtake, so a last-value-wins probe can
observe a stale value *only* when ordering is off.
"""

import pytest

from repro.datatypes import BYTE
from repro.machine import generic_cluster
from repro.runtime import World
from repro.topo import torus_network

N_PUTS = 12
SEEDS = (0, 1, 2, 3)


def overtaking_world(seed, ordered):
    """2x2x1 adaptive torus; rank 0 streams small puts to the far-corner
    rank 3 while rank 2 floods one of the two minimal 0->3 routes."""

    def program(ctx):
        alloc, tmems = yield from ctx.rma.expose_collective(8192)
        yield from ctx.comm.barrier()
        if ctx.rank == 0:
            src = ctx.mem.space.alloc(64)
            buf = ctx.mem.space.buffer(src)
            for i in range(N_PUTS):
                buf[:] = i + 1
                yield from ctx.rma.put(src, 0, 64, BYTE, tmems[3], 0,
                                       64, BYTE, ordering=ordered,
                                       blocking=True)
            yield from ctx.rma.complete(ctx.comm, 3)
        elif ctx.rank == 2:
            # Interferer: big puts 2->3 congest the (1,0,0)->(1,1,0)
            # link, one of the two minimal routes for the 0->3 flow.
            src = ctx.mem.space.alloc(4096, fill=0xEE)
            for _ in range(20):
                yield from ctx.rma.put(src, 0, 4096, BYTE, tmems[3],
                                       4096, 4096, BYTE)
            yield from ctx.rma.complete(ctx.comm, 3)
        elif ctx.rank == 3:
            yield ctx.sim.timeout(500.0)
            ctx.mem.fence()
            return int(ctx.mem.load(alloc, 0, 1)[0])
        return None

    net = torus_network((2, 2, 1), adaptive=True, link_byte_time=0.002)
    world = World(machine=generic_cluster(n_nodes=4), network=net,
                  seed=seed)
    return world, world.run(program)


class TestOrderingOnAdaptiveTorus:
    def test_adaptive_preset_reports_unordered(self):
        assert torus_network((2, 2, 1), adaptive=True).ordered is False
        assert torus_network((2, 2, 1)).ordered is True

    def test_unordered_flow_can_deliver_stale_final_value(self):
        stale_seeds = []
        for seed in SEEDS:
            world, out = overtaking_world(seed, ordered=False)
            assert world.fabric.reorder_count > 0
            assert 1 <= out[3] <= N_PUTS
            if out[3] != N_PUTS:
                stale_seeds.append((seed, out[3]))
        # Overtaking is probabilistic per seed but must actually happen
        # on this calibrated scenario for most of the pinned seeds.
        assert len(stale_seeds) >= 2, stale_seeds

    def test_ordering_attribute_defeats_adaptive_reordering(self):
        for seed in SEEDS:
            world, out = overtaking_world(seed, ordered=True)
            assert out[3] == N_PUTS, f"seed {seed}: final {out[3]}"

    def test_ordered_is_never_faster(self):
        for seed in SEEDS[:2]:
            w_un, _ = overtaking_world(seed, ordered=False)
            w_or, _ = overtaking_world(seed, ordered=True)
            assert w_or.sim.now >= w_un.sim.now - 1e-9
