"""Cable failures on routed fabrics: route-around, partition, restore."""

import pytest

from repro.datatypes import BYTE
from repro.faults import FaultPlan, LinkDownSpec
from repro.machine import generic_cluster
from repro.rma.target_mem import RmaError
from repro.runtime import World
from repro.topo import crossbar_network, torus_network


class TestSpec:
    def test_link_down_spec_validation(self):
        with pytest.raises(ValueError):
            LinkDownSpec(u=("h", 0), v=("xbar", 0), at=-1.0)
        with pytest.raises(ValueError):
            LinkDownSpec(u=("h", 0), v=("xbar", 0), at=10.0, restore_at=5.0)

    def test_plan_with_only_link_downs_is_active(self):
        plan = FaultPlan().link_down(("h", 0), ("xbar", 0), at=1.0)
        assert plan.active
        assert not FaultPlan().active


class TestArming:
    def test_flat_world_rejects_link_down_plan(self):
        plan = FaultPlan().link_down(("h", 0), ("xbar", 0), at=1.0)
        with pytest.raises(ValueError, match="flat"):
            World(n_ranks=2, fault_plan=plan, seed=0)

    def test_unknown_link_rejected_at_arm(self):
        plan = FaultPlan().link_down(("h", 0), ("h", 1), at=1.0)
        with pytest.raises(ValueError, match="link"):
            World(machine=generic_cluster(n_nodes=2),
                  network=crossbar_network(n_hosts=2),
                  fault_plan=plan, seed=0)


def put_after(delay, n_ranks=2, payload=7):
    """Rank 1 waits, then puts one byte-block at rank 0 and completes.

    Returns the per-rank outcome: "delivered", "failed: <err>" for the
    origin; the target just reports its final memory.  No barrier after
    the fault window — a partitioned fabric cannot complete one.
    """

    def program(ctx):
        alloc, tmems = yield from ctx.rma.expose_collective(4096)
        yield from ctx.comm.barrier()
        if ctx.rank == 1:
            src = ctx.mem.space.alloc(256, fill=payload)
            yield ctx.sim.timeout(delay)
            try:
                yield from ctx.rma.put(
                    src, 0, 256, BYTE, tmems[0], 0, 256, BYTE)
                yield from ctx.rma.complete(ctx.comm, 0)
            except RmaError as err:
                return f"failed: {err}"
            return "delivered"
        yield ctx.sim.timeout(delay + 30_000.0)
        ctx.mem.fence()
        return int(ctx.mem.load(alloc, 0, 1)[0])

    return program


class TestRouteAround:
    def test_torus_detours_around_dead_cable(self):
        # 4x1x1 ring: kill the direct 0->1 cable mid-run; traffic takes
        # the 3-hop detour and the put still lands.
        plan = FaultPlan().link_down((0, 0, 0), (1, 0, 0), at=50.0)
        world = World(machine=generic_cluster(n_nodes=4),
                      network=torus_network((4, 1, 1)),
                      fault_plan=plan, seed=0)
        out = world.run(put_after(100.0, n_ranks=4))
        assert out[1] == "delivered"
        assert out[0] == 7
        assert world.fault_stats()["injector"]["link_downs"] == 1
        assert len(world.topo.path_for(0, 1)) == 3

    def test_restore_brings_direct_path_back(self):
        plan = FaultPlan().link_down((0, 0, 0), (1, 0, 0),
                                     at=10.0, restore_at=60.0)
        world = World(machine=generic_cluster(n_nodes=4),
                      network=torus_network((4, 1, 1)),
                      fault_plan=plan, seed=0)
        out = world.run(put_after(100.0, n_ranks=4))
        assert out[1] == "delivered"
        stats = world.fault_stats()["injector"]
        assert stats["link_downs"] == 1
        assert stats["link_restores"] == 1
        assert len(world.topo.path_for(0, 1)) == 1  # direct again


class TestPartition:
    def test_partitioned_target_raises_rma_error(self):
        # On a crossbar the host uplink is the only path: cutting
        # h1<->xbar strands rank 1 entirely, so its put exhausts the
        # transport retry budget and surfaces as an RmaError.
        plan = (FaultPlan()
                .link_down(("h", 0), ("xbar", 0), at=50.0)
                .with_transport(retry_budget=2))
        world = World(machine=generic_cluster(n_nodes=2),
                      network=crossbar_network(n_hosts=2),
                      fault_plan=plan, seed=0)
        out = world.run(put_after(100.0))
        assert out[1].startswith("failed:")
        assert out[0] == 0  # nothing ever arrived
        assert world.fabric.unroutable_dropped > 0
        assert world.topo.unroutable > 0
