"""TopoRuntime: flight-time math, link contention, accounting."""

import pytest

from repro.topo import Crossbar, LinkStats, TopoRuntime, Torus3D, link_label


def xbar_runtime(n_hosts=4, link_latency=1.0, link_byte_time=0.01):
    topo = Crossbar(n_hosts, link_latency=link_latency,
                    link_byte_time=link_byte_time)
    ranks = {r: ("h", r) for r in range(n_hosts)}
    return TopoRuntime(topo, ranks)


class TestFlightMath:
    def test_uncontended_flight_is_ser_plus_latency_per_hop(self):
        rt = xbar_runtime()
        # 2 hops: each pays 100B * 0.01 = 1.0 ser + 1.0 latency.
        arrival = rt.flight(0, 1, 100, now=5.0)
        assert arrival == pytest.approx(5.0 + 2 * (1.0 + 1.0))

    def test_second_packet_queues_on_busy_link(self):
        rt = xbar_runtime()
        a1 = rt.flight(0, 1, 100, now=0.0)
        # Injected at the same instant: both cross h0->xbar then xbar->h1;
        # the second serializes after the first on each hop.
        a2 = rt.flight(0, 1, 100, now=0.0)
        assert a2 > a1
        ingress = rt.link_stats[(("h", 0), ("xbar", 0))]
        assert ingress.packets == 2
        assert ingress.queue_us == pytest.approx(1.0)  # one ser behind

    def test_disjoint_paths_do_not_contend(self):
        rt = xbar_runtime()
        a1 = rt.flight(0, 1, 100, now=0.0)
        a2 = rt.flight(2, 3, 100, now=0.0)
        assert a1 == a2  # (0,1) and (2,3) share no link on a crossbar

    def test_incast_serializes_on_target_egress(self):
        rt = xbar_runtime()
        arrivals = [rt.flight(src, 0, 100, now=0.0) for src in (1, 2, 3)]
        # All three share xbar->h0: arrivals strictly spaced by >= ser.
        assert arrivals[1] - arrivals[0] >= 1.0
        assert arrivals[2] - arrivals[1] >= 1.0
        egress = rt.link_stats[(("xbar", 0), ("h", 0))]
        assert egress.packets == 3
        assert egress.queue_us > 0

    def test_same_host_loopback_pays_one_switch_latency(self):
        topo = Crossbar(2, link_latency=1.0)
        rt = TopoRuntime(topo, {0: ("h", 0), 1: ("h", 0)})
        assert rt.flight(0, 1, 100, now=3.0) == pytest.approx(4.0)
        assert rt.packets_routed == 0  # no cable traversed

    def test_stats_identity_packets_vs_hops(self):
        rt = xbar_runtime()
        for src in (1, 2, 3):
            for _ in range(5):
                rt.flight(src, 0, 64, now=0.0)
        link_sum = sum(st.packets for st in rt.link_stats.values())
        assert link_sum == rt.hops_traversed == 30
        assert rt.packets_routed == 15

    def test_utilization(self):
        rt = xbar_runtime()
        rt.flight(0, 1, 100, now=0.0)  # 1.0 us busy per link
        link = (("h", 0), ("xbar", 0))
        assert rt.utilization(link, now=10.0) == pytest.approx(0.1)
        assert rt.utilization(link, now=0.0) == 0.0
        assert rt.utilization((("h", 2), ("xbar", 0)), now=10.0) == 0.0


class TestDeadLinks:
    def test_fail_and_restore_reroute(self):
        topo = Torus3D((4, 1, 1), link_latency=1.0, link_byte_time=0.0)
        rt = TopoRuntime(topo, {r: (r, 0, 0) for r in range(4)})
        direct = rt.path_for(0, 1)
        assert len(direct) == 1
        rt.fail_link((0, 0, 0), (1, 0, 0))
        assert len(rt.path_for(0, 1)) == 3  # the long way round
        rt.restore_link((0, 0, 0), (1, 0, 0))
        assert len(rt.path_for(0, 1)) == 1

    def test_partition_returns_none_and_counts(self):
        topo = Crossbar(2)
        rt = TopoRuntime(topo, {0: ("h", 0), 1: ("h", 1)})
        rt.fail_link(("h", 1), ("xbar", 0))
        assert rt.path_for(0, 1) is None
        assert rt.flight(0, 1, 64, now=0.0) is None
        assert rt.unroutable == 1

    def test_one_way_failure(self):
        topo = Crossbar(2)
        rt = TopoRuntime(topo, {0: ("h", 0), 1: ("h", 1)})
        rt.fail_link(("xbar", 0), ("h", 1), both=False)
        assert rt.path_for(0, 1) is None
        assert rt.path_for(1, 0) is not None  # reverse direction fine

    def test_unknown_link_rejected(self):
        rt = xbar_runtime()
        with pytest.raises(ValueError):
            rt.fail_link(("h", 0), ("h", 1))  # hosts aren't wired directly


class TestConstruction:
    def test_unknown_host_rejected(self):
        topo = Crossbar(2)
        with pytest.raises(ValueError):
            TopoRuntime(topo, {0: ("h", 0), 1: ("h", 99)})

    def test_metrics_publication(self):
        from repro.obs.metrics import MetricsRegistry

        rt = xbar_runtime()
        rt.flight(1, 0, 100, now=0.0)
        metrics = MetricsRegistry()
        rt.publish_metrics(metrics, now=10.0)
        snap = metrics.snapshot()
        gauges = {(g["name"], tuple(sorted(g["labels"].items()))): g["value"]
                  for g in snap["gauges"]}
        label = link_label((("xbar", 0), ("h", 0)))
        assert gauges[("topo.link.packets", (("link", label),))] == 1
        assert gauges[("topo.packets_routed", ())] == 1
        assert gauges[("topo.hops_traversed", ())] == 2

    def test_linkstats_repr_fields(self):
        st = LinkStats()
        assert st.packets == 0 and st.bytes == 0
        assert st.busy_us == 0.0 and st.queue_us == 0.0
