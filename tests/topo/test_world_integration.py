"""Routed fabrics inside a full World: congestion, placement, metrics."""

import pytest

from repro.bench.workloads import (
    all_to_all_time,
    hotspot_incast,
    torus_halo_time,
)
from repro.machine import generic_cluster
from repro.network import seastar_portals
from repro.runtime import World
from repro.topo import crossbar_network, fattree_network, torus_network


def slow_torus(dims=(4, 4, 4)):
    # link_byte_time=0.002 makes per-hop serialization (4.1us for a
    # 2KiB put) exceed the open-loop issue interval, so fan-in actually
    # backs up instead of draining between puts.
    return torus_network(dims, link_byte_time=0.002)


class TestHotspotCongestion:
    def test_torus_incast_tail_grows_superlinearly(self):
        net = slow_torus()
        p99 = {}
        for fanin in (2, 8):
            r = hotspot_incast(
                fanin, network=net,
                machine=generic_cluster(n_nodes=fanin + 1))
            p99[fanin] = r["p99"]
        # 4x the fan-in, far more than 4x the tail: the hot ingress
        # links at rank 0's host saturate and the backlog compounds.
        assert p99[8] > 5 * (8 / 2) * p99[2]

    def test_flat_fabric_shows_no_incast_tail(self):
        p99 = {}
        for fanin in (2, 8):
            r = hotspot_incast(fanin)
            p99[fanin] = r["p99"]
        assert p99[8] == pytest.approx(p99[2], rel=0.5)

    def test_congestion_on_every_topology(self):
        nets = {
            "torus": slow_torus(),
            "fattree": fattree_network(link_byte_time=0.002),
            "crossbar": crossbar_network(n_hosts=9, link_byte_time=0.002),
        }
        for name, net in nets.items():
            r = hotspot_incast(
                8, network=net, machine=generic_cluster(n_nodes=9))
            flat = hotspot_incast(8)
            assert r["p99"] > 2 * flat["p99"], name


class TestPlacement:
    def test_random_placement_slows_torus_halo(self):
        blk = torus_halo_time(dims=(4, 4, 4), iterations=3,
                              placement="block")
        rnd = torus_halo_time(dims=(4, 4, 4), iterations=3,
                              placement="random", placement_seed=1)
        # Block placement puts halo neighbours one hop apart; random
        # placement scatters them across the torus.
        assert rnd > blk * 1.05


class TestDeterminismAndMetrics:
    def test_adaptive_torus_world_is_seed_deterministic(self):
        net = torus_network((2, 2, 2), adaptive=True)
        machine = generic_cluster(n_nodes=8)
        a = all_to_all_time(n_ranks=8, iterations=2, network=net,
                            machine=machine, seed=11)
        b = all_to_all_time(n_ranks=8, iterations=2, network=net,
                            machine=machine, seed=11)
        assert a == b

    def test_world_without_topology_has_no_topo_runtime(self):
        world = World(n_ranks=2, network=seastar_portals(), seed=0)
        assert world.topo is None
        assert world.fabric.topology is None

    def test_world_rejects_machine_larger_than_topology(self):
        net = torus_network((2, 2, 2))  # 8 hosts
        with pytest.raises(ValueError):
            World(machine=generic_cluster(n_nodes=9), network=net, seed=0)

    def test_topo_metrics_published_and_consistent(self):
        out = []
        hotspot_incast(3, network=crossbar_network(n_hosts=4),
                       machine=generic_cluster(n_nodes=4), world_out=out)
        world = out[0]
        topo = world.topo
        assert topo is not None
        link_sum = sum(st.packets for st in topo.link_stats.values())
        assert link_sum == topo.hops_traversed
        assert topo.packets_routed > 0

        snap = world.collect_metrics().snapshot()
        gauges = {g["name"] for g in snap["gauges"]}
        assert "topo.packets_routed" in gauges
        assert "topo.link.busy_us" in gauges
        assert "fabric.unroutable_dropped" in gauges

    def test_burst_delivery_disabled_on_routed_fabric(self):
        out = []
        hotspot_incast(2, network=slow_torus(),
                       machine=generic_cluster(n_nodes=3), world_out=out)
        # Burst coalescing would bypass per-link accounting; the NIC
        # must fall back to per-packet transmit when a topology is set.
        assert out[0].topo.packets_routed > 0
