"""Rank-to-node placement strategies and their machine integration."""

import pytest

from repro.machine import (
    MachineConfig,
    PLACEMENTS,
    build_nodes,
    generic_cluster,
    nec_sx9,
    placement_map,
)


class TestPlacementMap:
    def test_block_matches_historical_division(self):
        m = placement_map("block", n_nodes=4, ranks_per_node=2)
        assert m == tuple(r // 2 for r in range(8))

    def test_round_robin_cycles(self):
        m = placement_map("round_robin", n_nodes=4, ranks_per_node=2)
        assert m == (0, 1, 2, 3, 0, 1, 2, 3)

    def test_random_is_balanced_and_seeded(self):
        a = placement_map("random", n_nodes=4, ranks_per_node=3, seed=7)
        b = placement_map("random", n_nodes=4, ranks_per_node=3, seed=7)
        c = placement_map("random", n_nodes=4, ranks_per_node=3, seed=8)
        assert a == b
        assert a != c
        for node in range(4):
            assert sum(1 for n in a if n == node) == 3

    def test_every_strategy_is_load_balanced(self):
        for strategy in PLACEMENTS:
            m = placement_map(strategy, n_nodes=5, ranks_per_node=4, seed=1)
            assert len(m) == 20
            for node in range(5):
                assert sum(1 for n in m if n == node) == 4

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            placement_map("snake", 4, 2)
        with pytest.raises(ValueError):
            placement_map("block", 0, 2)


class TestMachineConfigPlacement:
    def test_default_placement_is_block(self):
        cfg = generic_cluster(n_nodes=4, ranks_per_node=2)
        assert cfg.placement == "block"
        assert [cfg.node_of_rank(r) for r in range(8)] == \
            [r // 2 for r in range(8)]

    def test_with_placement(self):
        cfg = generic_cluster(n_nodes=4, ranks_per_node=2).with_placement(
            "round_robin")
        assert cfg.node_of_rank(0) == 0
        assert cfg.node_of_rank(4) == 0
        assert cfg.node_of_rank(1) == 1

    def test_ranks_on_node_inverts_node_of_rank(self):
        cfg = nec_sx9().with_placement("random", seed=3)
        seen = []
        for node in range(cfg.n_nodes):
            ranks = cfg.ranks_on_node(node)
            assert ranks == sorted(ranks)
            for r in ranks:
                assert cfg.node_of_rank(r) == node
            seen.extend(ranks)
        assert sorted(seen) == list(range(cfg.n_ranks))

    def test_invalid_placement_rejected_at_construction(self):
        with pytest.raises(ValueError):
            MachineConfig(placement="scatter")

    def test_build_nodes_follows_placement(self):
        cfg = generic_cluster(n_nodes=2, ranks_per_node=2).with_placement(
            "round_robin")
        nodes = build_nodes(cfg)
        assert nodes[0].ranks == [0, 2]
        assert nodes[1].ranks == [1, 3]
        assert set(nodes[0].memories) == {0, 2}

    def test_out_of_range_queries_rejected(self):
        cfg = generic_cluster(n_nodes=2)
        with pytest.raises(ValueError):
            cfg.node_of_rank(2)
        with pytest.raises(ValueError):
            cfg.ranks_on_node(2)


class TestPlacementInWorld:
    def test_same_node_ranks_use_intra_path_under_round_robin(self):
        from repro.runtime import World

        def program(ctx):
            import numpy as np

            peer = {0: 2, 2: 0, 1: 3, 3: 1}[ctx.rank]
            data = np.full(32, ctx.rank, dtype=np.uint8)
            if ctx.rank in (0, 1):
                yield from ctx.comm.send(data, dest=peer)
            else:
                got = yield from ctx.comm.recv(source=peer)
                assert got.nbytes == 32
            return True

        # round_robin on 2 nodes x 2 ranks: node0={0,2}, node1={1,3} —
        # both transfers are intra-node and must ride the fast path.
        machine = generic_cluster(n_nodes=2, ranks_per_node=2)
        machine = machine.with_placement("round_robin")
        world = World(machine=machine, seed=0)
        assert world.run(program) == [True] * 4
        assert world.fabric.intra_node_packets > 0
