"""Topology graph construction and routing algorithms."""

import numpy as np
import pytest

from repro.topo import (
    Crossbar,
    FatTree,
    NoRoute,
    Torus3D,
    link_label,
)


class TestTorus3D:
    def test_hosts_enumeration_row_major(self):
        t = Torus3D((2, 2, 2))
        assert t.n_hosts == 8
        assert t.hosts[0] == (0, 0, 0)
        assert t.hosts[1] == (0, 0, 1)  # z fastest
        assert t.hosts[2] == (0, 1, 0)
        assert t.hosts[-1] == (1, 1, 1)

    def test_every_node_has_six_neighbours_in_big_torus(self):
        t = Torus3D((4, 4, 4))
        for host in t.hosts:
            assert t.graph.out_degree(host) == 6
            assert t.graph.in_degree(host) == 6

    def test_dimension_order_route_corrects_x_then_y_then_z(self):
        t = Torus3D((4, 4, 4))
        path = t.route((0, 0, 0), (2, 1, 3))
        # x hops first, then y, then z (shortest wrap: 3 is one -1 hop).
        heads = [v for _, v in path]
        assert heads[0] == (1, 0, 0)
        assert heads[1] == (2, 0, 0)
        assert heads[2] == (2, 1, 0)
        assert heads[3] == (2, 1, 3)  # wraps backwards
        assert len(path) == 4

    def test_route_takes_shortest_wrap_direction(self):
        t = Torus3D((5, 1, 1))
        # 0 -> 3 is 2 hops backwards (0 -> 4 -> 3), not 3 forwards.
        path = t.route((0, 0, 0), (3, 0, 0))
        assert len(path) == 2
        assert path[0] == ((0, 0, 0), (4, 0, 0))

    def test_route_tie_goes_forward(self):
        t = Torus3D((4, 1, 1))
        path = t.route((0, 0, 0), (2, 0, 0))
        assert [v for _, v in path] == [(1, 0, 0), (2, 0, 0)]

    def test_self_route_is_empty(self):
        t = Torus3D((3, 3, 3))
        assert t.route((1, 1, 1), (1, 1, 1)) == []

    def test_adaptive_route_is_minimal_and_seeded(self):
        t = Torus3D((4, 4, 4), adaptive=True)
        src, dst = (0, 0, 0), (2, 2, 2)
        rng_a = np.random.default_rng(42)
        rng_b = np.random.default_rng(42)
        paths_a = [t.route(src, dst, rng=rng_a) for _ in range(20)]
        paths_b = [t.route(src, dst, rng=rng_b) for _ in range(20)]
        assert paths_a == paths_b  # same seed, same routes
        assert all(len(p) == 6 for p in paths_a)  # always minimal
        assert len({tuple(p) for p in paths_a}) > 1  # routes actually vary

    def test_max_hops_bounds_routes(self):
        t = Torus3D((4, 4, 4))
        assert t.max_hops() == 6
        path = t.route((0, 0, 0), (2, 2, 2))
        assert len(path) <= t.max_hops()

    def test_detour_around_dead_link(self):
        t = Torus3D((4, 1, 1))
        primary = t.route((0, 0, 0), (1, 0, 0))
        assert primary == [((0, 0, 0), (1, 0, 0))]
        detour = t.route((0, 0, 0), (1, 0, 0),
                         avoid={((0, 0, 0), (1, 0, 0))})
        assert detour[0][1] == (3, 0, 0)  # goes the long way round
        assert len(detour) == 3

    def test_bad_dims_rejected(self):
        with pytest.raises(ValueError):
            Torus3D((4, 4))
        with pytest.raises(ValueError):
            Torus3D((0, 4, 4))


class TestFatTree:
    def test_structure(self):
        t = FatTree(hosts_per_leaf=4, n_leaf=4, n_spine=2)
        assert t.n_hosts == 16
        assert ("leaf", 0) in t.graph
        assert ("spine", 1) in t.graph

    def test_same_leaf_route_turns_at_leaf(self):
        t = FatTree(hosts_per_leaf=4, n_leaf=4, n_spine=2)
        path = t.route(("h", 0), ("h", 3))
        assert path == [(("h", 0), ("leaf", 0)), (("leaf", 0), ("h", 3))]

    def test_cross_leaf_route_climbs_to_spine(self):
        t = FatTree(hosts_per_leaf=4, n_leaf=4, n_spine=2)
        path = t.route(("h", 0), ("h", 5))
        assert len(path) == 4
        assert path[1][1][0] == "spine"
        assert path[-1] == (("leaf", 1), ("h", 5))

    def test_deterministic_spine_choice_is_stable(self):
        t = FatTree(hosts_per_leaf=2, n_leaf=4, n_spine=2)
        p1 = t.route(("h", 0), ("h", 7))
        p2 = t.route(("h", 0), ("h", 7))
        assert p1 == p2

    def test_adaptive_spine_choice_varies(self):
        t = FatTree(hosts_per_leaf=2, n_leaf=4, n_spine=4, adaptive=True)
        rng = np.random.default_rng(0)
        spines = {t.route(("h", 0), ("h", 7), rng=rng)[1][1]
                  for _ in range(40)}
        assert len(spines) > 1

    def test_partition_when_all_spines_dead(self):
        t = FatTree(hosts_per_leaf=2, n_leaf=2, n_spine=1)
        dead = {(("leaf", 0), ("spine", 0)), (("spine", 0), ("leaf", 0))}
        with pytest.raises(NoRoute):
            t.route(("h", 0), ("h", 2), avoid=dead)


class TestCrossbar:
    def test_two_hop_routes(self):
        t = Crossbar(8)
        path = t.route(("h", 2), ("h", 5))
        assert path == [(("h", 2), ("xbar", 0)), (("xbar", 0), ("h", 5))]
        assert t.max_hops() == 2

    def test_host_link_down_partitions_host(self):
        t = Crossbar(4)
        dead = {(("h", 0), ("xbar", 0)), (("xbar", 0), ("h", 0))}
        with pytest.raises(NoRoute):
            t.route(("h", 0), ("h", 1), avoid=dead)


class TestLinkParams:
    def test_defaults_and_overrides(self):
        t = Crossbar(2, link_latency=0.3, link_byte_time=0.001)
        lat, bt = t.link_params(("h", 0), ("xbar", 0))
        assert (lat, bt) == (0.3, 0.001)

    def test_links_sorted_and_bidirectional(self):
        t = Crossbar(2)
        links = t.links()
        assert links == sorted(links)
        for u, v in links:
            assert (v, u) in t.graph.edges

    def test_link_label(self):
        assert link_label((("h", 3), ("leaf", 0))) == "h3->leaf0"
        assert link_label(((0, 1, 2), (0, 1, 3))) == "(0,1,2)->(0,1,3)"
