"""Tests for the World runtime harness."""

import pytest

from repro.machine import generic_cluster, nec_sx9
from repro.network import quadrics_like
from repro.runtime import World
from repro.sim import SimulationError


class TestConstruction:
    def test_n_ranks_builds_one_rank_per_node(self):
        w = World(n_ranks=5)
        assert w.n_ranks == 5
        assert len(w.nodes) == 5

    def test_machine_rank_count_wins(self):
        w = World(machine=generic_cluster(3))
        assert w.n_ranks == 3

    def test_n_ranks_resizes_single_rank_machine(self):
        w = World(n_ranks=6, machine=generic_cluster(2))
        assert w.n_ranks == 6

    def test_conflicting_rank_spec_rejected(self):
        with pytest.raises(ValueError, match="conflicts"):
            World(n_ranks=5, machine=nec_sx9(n_nodes=2, ranks_per_node=2))

    def test_multirank_nodes(self):
        w = World(machine=nec_sx9(n_nodes=2, ranks_per_node=2))
        assert w.n_ranks == 4
        assert w.nodes[0].ranks == [0, 1]

    def test_all_interfaces_attached(self):
        w = World(n_ranks=2)
        ctx = w.contexts[0]
        assert ctx.rma is not None
        assert ctx.mpi2 is not None
        assert ctx.armci is not None
        assert ctx.gasnet is not None
        assert ctx.shmem is not None

    def test_repr_mentions_machine_and_network(self):
        w = World(n_ranks=2, network=quadrics_like())
        assert "quadrics" in repr(w)


class TestRun:
    def test_returns_values_in_rank_order(self):
        def program(ctx):
            yield ctx.sim.timeout((ctx.size - ctx.rank) * 5.0)
            return ctx.rank * 10

        assert World(n_ranks=4).run(program) == [0, 10, 20, 30]

    def test_extra_args_passed_through(self):
        def program(ctx, a, b):
            return (ctx.rank, a + b)
            yield  # pragma: no cover

        out = World(n_ranks=2).run(program, 1, 2)
        assert out == [(0, 3), (1, 3)]

    def test_subset_of_ranks(self):
        def program(ctx):
            yield ctx.sim.timeout(1)
            return ctx.rank

        out = World(n_ranks=4).run(program, ranks=[1, 3])
        assert out == [1, 3]

    def test_rank_exception_propagates(self):
        def program(ctx):
            yield ctx.sim.timeout(1)
            if ctx.rank == 2:
                raise RuntimeError("rank 2 exploded")

        with pytest.raises(RuntimeError, match="rank 2 exploded"):
            World(n_ranks=3).run(program)

    def test_deadlock_reports_blocked_ranks(self):
        def program(ctx):
            if ctx.rank == 0:
                yield from ctx.comm.recv(source=1)

        with pytest.raises(SimulationError, match=r"ranks \[0\]"):
            World(n_ranks=2).run(program)

    def test_time_limit(self):
        def program(ctx):
            yield ctx.sim.timeout(1000.0)

        with pytest.raises(SimulationError, match="time limit"):
            World(n_ranks=1).run(program, limit=10.0)

    def test_consecutive_runs_share_state(self):
        """The same World can run phases back to back; memory persists."""
        w = World(n_ranks=2)

        def phase1(ctx):
            ctx.scratch = ctx.mem.space.alloc(8, fill=3)
            return None
            yield  # pragma: no cover

        def phase2(ctx):
            return ctx.mem.load(ctx.scratch, 0, 8).tolist()
            yield  # pragma: no cover

        w.run(phase1)
        assert w.run(phase2) == [[3] * 8, [3] * 8]

    def test_simulated_time_advances_monotonically(self):
        w = World(n_ranks=2)

        def program(ctx):
            yield ctx.sim.timeout(10)

        w.run(program)
        t1 = w.now
        w.run(program)
        assert w.now > t1

    def test_determinism_across_worlds(self):
        def program(ctx):
            alloc, tmems = yield from ctx.rma.expose_collective(64)
            if ctx.rank == 1:
                src = ctx.mem.space.alloc(16)
                yield from ctx.rma.put(
                    src, 0, 16, __import__("repro.datatypes",
                                           fromlist=["BYTE"]).BYTE,
                    tmems[0], 0, 16,
                    __import__("repro.datatypes", fromlist=["BYTE"]).BYTE,
                    blocking=True, remote_completion=True,
                )
            yield from ctx.comm.barrier()
            return ctx.sim.now

        a = World(n_ranks=3, network=quadrics_like(), seed=9).run(program)
        b = World(n_ranks=3, network=quadrics_like(), seed=9).run(program)
        assert a == b


class TestCompute:
    def test_compute_advances_clock(self):
        def program(ctx):
            t0 = ctx.sim.now
            yield from ctx.compute(123.5)
            return ctx.sim.now - t0

        assert World(n_ranks=1).run(program) == [123.5]
